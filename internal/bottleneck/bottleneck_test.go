package bottleneck

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/analyze"
	"repro/internal/region"
	"repro/internal/trace"
)

// lateSpawnTrace plants one late spawner: thread 0 publishes task 1 at
// t=250 while thread 1 has been ready at its taskwait since t=110. The
// victim's dispatch gap [110,300) therefore overlaps the creation up to
// t=250: 140 ns of late-spawn wait, 50 ns of plain dispatch.
func lateSpawnTrace() *trace.Trace {
	reg := region.NewRegistry()
	task := reg.Register("spawn.task", "s.go", 1, region.Task)
	tw := reg.Register("spawn.tw", "s.go", 2, region.Taskwait)
	return &trace.Trace{Threads: map[int][]trace.Event{
		0: {
			{Time: 100, Type: trace.EvThreadBegin},
			{Time: 200, Type: trace.EvTaskCreateBegin, Region: task},
			{Time: 250, Type: trace.EvTaskCreateEnd, Region: task, TaskID: 1},
			{Time: 260, Type: trace.EvEnter, Region: tw},
			{Time: 265, Type: trace.EvExit, Region: tw},
			{Time: 270, Type: trace.EvThreadEnd},
		},
		1: {
			{Time: 100, Type: trace.EvThreadBegin},
			{Time: 110, Type: trace.EvEnter, Region: tw},
			{Time: 300, Type: trace.EvTaskBegin, Region: task, TaskID: 1},
			{Time: 350, Type: trace.EvTaskEnd, Region: task, TaskID: 1},
			{Time: 360, Type: trace.EvExit, Region: tw},
			{Time: 370, Type: trace.EvThreadEnd},
		},
	}}
}

func TestLateSpawnClassification(t *testing.T) {
	a := Analyze(lateSpawnTrace())

	want := []WaitState{{
		Kind: analyze.LateTaskSpawn, Thread: 1, CauseThread: 0,
		Region: "spawn.task", Time: 140, Count: 1,
	}}
	if !reflect.DeepEqual(a.WaitStates, want) {
		t.Fatalf("wait states = %+v, want %+v", a.WaitStates, want)
	}

	tw1 := a.PerThread[1]
	if tw1.LateSpawnWait != 140 || tw1.PlainDispatchWait != 50 {
		t.Fatalf("thread 1 waits = %+v, want late 140 plain 50", tw1)
	}
	if tw1.UnclassifiedIdle != 10 { // trailing [350,360] in the taskwait
		t.Fatalf("thread 1 unclassified idle = %d, want 10", tw1.UnclassifiedIdle)
	}

	// Critical path: thread 1 finishes last at 370; the walk crosses
	// the spawn edge back to thread 0's creation at 250.
	cp := a.CriticalPath
	if cp.Length != 270 || cp.SpawnWait != 50 || cp.JoinWait != 0 || cp.Other != 0 {
		t.Fatalf("critical path = %+v, want length 270 spawn 50", cp)
	}
	wantRegions := []PathRegion{
		{Region: ImplicitRegion, Time: 170, Share: 170.0 / 270.0, WhatIf10: 17, WhatIf25: 42, WhatIf50: 85},
		{Region: "spawn.task", Time: 50, Share: 50.0 / 270.0, WhatIf10: 5, WhatIf25: 12, WhatIf50: 25},
	}
	if !reflect.DeepEqual(cp.Regions, wantRegions) {
		t.Fatalf("path regions = %+v, want %+v", cp.Regions, wantRegions)
	}
	pathSum := cp.SpawnWait + cp.JoinWait + cp.Other
	for _, pr := range cp.Regions {
		pathSum += pr.Time
	}
	if pathSum != cp.Length {
		t.Fatalf("path partition %d != length %d", pathSum, cp.Length)
	}

	assertFinding(t, a.Findings, analyze.LateTaskSpawn, "spawn.task", &analyze.Attribution{
		Victim: 1, CauseThread: 0, CauseRegion: "spawn.task", WaitNs: 140,
	})
	assertFinding(t, a.Findings, analyze.CriticalPathHotspot, "spawn.task", nil)
}

// starvedThiefTrace plants one starved thief: thread 0 creates tasks 1
// (hoardA, pending [120,150)) and 2 (hoardB, pending [130,210)) and
// runs both itself while thread 1 idles in its taskwait [130,250].
// 80 ns of that idle overlaps pending work held by thread 0.
func starvedThiefTrace() *trace.Trace {
	reg := region.NewRegistry()
	taskA := reg.Register("hoardA.task", "h.go", 1, region.Task)
	taskB := reg.Register("hoardB.task", "h.go", 2, region.Task)
	tw := reg.Register("hoard.tw", "h.go", 3, region.Taskwait)
	return &trace.Trace{Threads: map[int][]trace.Event{
		0: {
			{Time: 100, Type: trace.EvThreadBegin},
			{Time: 110, Type: trace.EvTaskCreateBegin, Region: taskA},
			{Time: 120, Type: trace.EvTaskCreateEnd, Region: taskA, TaskID: 1},
			{Time: 125, Type: trace.EvTaskCreateBegin, Region: taskB},
			{Time: 130, Type: trace.EvTaskCreateEnd, Region: taskB, TaskID: 2},
			{Time: 140, Type: trace.EvEnter, Region: tw},
			{Time: 150, Type: trace.EvTaskBegin, Region: taskA, TaskID: 1},
			{Time: 200, Type: trace.EvTaskEnd, Region: taskA, TaskID: 1},
			{Time: 210, Type: trace.EvTaskBegin, Region: taskB, TaskID: 2},
			{Time: 260, Type: trace.EvTaskEnd, Region: taskB, TaskID: 2},
			{Time: 270, Type: trace.EvExit, Region: tw},
			{Time: 280, Type: trace.EvThreadEnd},
		},
		1: {
			{Time: 100, Type: trace.EvThreadBegin},
			{Time: 130, Type: trace.EvEnter, Region: tw},
			{Time: 250, Type: trace.EvExit, Region: tw},
			{Time: 255, Type: trace.EvThreadEnd},
		},
	}}
}

func TestStarvedThiefClassification(t *testing.T) {
	a := Analyze(starvedThiefTrace())

	// The cause region is the single most-overlapping pending task:
	// hoardB (80 ns) over hoardA (20 ns).
	want := []WaitState{{
		Kind: analyze.StarvedThief, Thread: 1, CauseThread: 0,
		Region: "hoardB.task", Time: 80, Count: 1,
	}}
	if !reflect.DeepEqual(a.WaitStates, want) {
		t.Fatalf("wait states = %+v, want %+v", a.WaitStates, want)
	}

	tw1 := a.PerThread[1]
	if tw1.StarvedWait != 80 || tw1.UnclassifiedIdle != 40 {
		t.Fatalf("thread 1 waits = %+v, want starved 80 unclassified 40", tw1)
	}
	// The hoarder's own dispatch gaps are plain: self-created tasks are
	// never late-spawn waits.
	tw0 := a.PerThread[0]
	if tw0.LateSpawnWait != 0 || tw0.PlainDispatchWait != 20 || tw0.StarvedWait != 0 {
		t.Fatalf("thread 0 waits = %+v, want plain 20 only", tw0)
	}

	assertFinding(t, a.Findings, analyze.StarvedThief, "hoardB.task", &analyze.Attribution{
		Victim: 1, CauseThread: 0, CauseRegion: "hoardB.task", WaitNs: 80,
	})
}

// skewedBarrierTrace plants a skewed barrier: threads 0/1/2 arrive at
// 200/300/500 and all leave at 510. Thread 2 is the last arriver every
// earlier thread waits for.
func skewedBarrierTrace() *trace.Trace {
	reg := region.NewRegistry()
	bar := reg.Register("skew.bar", "b.go", 1, region.Barrier)
	tr := &trace.Trace{Threads: make(map[int][]trace.Event)}
	arrivals := []int64{200, 300, 500}
	for tid, arr := range arrivals {
		tr.Threads[tid] = []trace.Event{
			{Time: 100, Type: trace.EvThreadBegin},
			{Time: arr, Type: trace.EvEnter, Region: bar},
			{Time: 510, Type: trace.EvExit, Region: bar},
			{Time: 520, Type: trace.EvThreadEnd},
		}
	}
	return tr
}

func TestBarrierImbalanceClassification(t *testing.T) {
	a := Analyze(skewedBarrierTrace())

	wantBarriers := []BarrierInstance{{
		Region: "skew.bar", Ordinal: 0, Threads: 3,
		FirstArrival: 200, LastArrival: 500, LastThread: 2, Skew: 300,
	}}
	if !reflect.DeepEqual(a.Barriers, wantBarriers) {
		t.Fatalf("barriers = %+v, want %+v", a.Barriers, wantBarriers)
	}

	want := []WaitState{
		{Kind: analyze.BarrierImbalance, Thread: 0, CauseThread: 2, Region: "skew.bar", Time: 300, Count: 1},
		{Kind: analyze.BarrierImbalance, Thread: 1, CauseThread: 2, Region: "skew.bar", Time: 200, Count: 1},
	}
	if !reflect.DeepEqual(a.WaitStates, want) {
		t.Fatalf("wait states = %+v, want %+v", a.WaitStates, want)
	}
	for tid, wantWait := range map[int]int64{0: 300, 1: 200, 2: 0} {
		if got := a.PerThread[tid].BarrierWait; got != wantWait {
			t.Fatalf("thread %d barrier wait = %d, want %d", tid, got, wantWait)
		}
		// [lastArrival, exit] release tails stay unclassified.
		if got := a.PerThread[tid].UnclassifiedIdle; got != 10 {
			t.Fatalf("thread %d unclassified idle = %d, want 10", tid, got)
		}
	}

	// The walk hands off through the barrier to the last arriver:
	// 10 ns release overhead, the rest implicit-task time.
	cp := a.CriticalPath
	if cp.Length != 420 || cp.Other != 10 || cp.SpawnWait != 0 || cp.JoinWait != 0 {
		t.Fatalf("critical path = %+v, want length 420 other 10", cp)
	}
	if len(cp.Regions) != 1 || cp.Regions[0].Region != ImplicitRegion || cp.Regions[0].Time != 410 {
		t.Fatalf("path regions = %+v, want implicit 410", cp.Regions)
	}

	// The finding aggregates both victims: Victim collapses to -1.
	assertFinding(t, a.Findings, analyze.BarrierImbalance, "skew.bar", &analyze.Attribution{
		Victim: -1, CauseThread: 2, CauseRegion: "skew.bar", WaitNs: 500,
	})
}

func assertFinding(t *testing.T, findings []analyze.Finding, kind analyze.Kind, construct string, attr *analyze.Attribution) {
	t.Helper()
	for _, f := range findings {
		if f.Kind != kind {
			continue
		}
		if f.Construct != construct {
			t.Fatalf("%v finding construct = %q, want %q", kind, f.Construct, construct)
		}
		if attr != nil && !reflect.DeepEqual(f.Attribution, attr) {
			t.Fatalf("%v attribution = %+v, want %+v", kind, f.Attribution, attr)
		}
		if f.Severity < 0 || f.Severity > 1 {
			t.Fatalf("%v severity %f out of [0,1]", kind, f.Severity)
		}
		return
	}
	t.Fatalf("no %v finding in %+v", kind, findings)
}

// TestParallelMatchesSequential is the determinism property: the
// sharded collector must be reflect.DeepEqual-identical to the
// sequential one at every worker count, on every planted scenario and
// on a larger mixed trace.
func TestParallelMatchesSequential(t *testing.T) {
	traces := map[string]*trace.Trace{
		"late-spawn":  lateSpawnTrace(),
		"starved":     starvedThiefTrace(),
		"barrier":     skewedBarrierTrace(),
		"mixed-large": mixedTrace(8, 200),
	}
	for name, tr := range traces {
		want := Analyze(tr)
		for _, workers := range []int{0, 1, 2, 4, 8} {
			got := AnalyzeQuery(tr, trace.Query{}, workers)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("%s workers=%d: parallel bottleneck analysis diverges\n got %+v\nwant %+v",
					name, workers, got, want)
			}
		}
	}
}

// mixedTrace builds a many-thread trace exercising every event type:
// per-thread task lifecycles under a taskwait inside a parallel region.
func mixedTrace(threads, tasks int) *trace.Trace {
	reg := region.NewRegistry()
	par := reg.Register("m.par", "m.go", 1, region.Parallel)
	task := reg.Register("m.task", "m.go", 2, region.Task)
	tw := reg.Register("m.tw", "m.go", 3, region.Taskwait)
	tr := &trace.Trace{Threads: make(map[int][]trace.Event)}
	var id uint64
	for t := 0; t < threads; t++ {
		ts := int64(100 * t)
		tick := func(d int64) int64 { ts += d; return ts }
		evs := []trace.Event{
			{Time: tick(1), Type: trace.EvThreadBegin},
			{Time: tick(2), Type: trace.EvEnter, Region: par},
			{Time: tick(3), Type: trace.EvEnter, Region: tw},
		}
		for i := 0; i < tasks; i++ {
			id++
			evs = append(evs,
				trace.Event{Time: tick(2), Type: trace.EvTaskCreateBegin, Region: task},
				trace.Event{Time: tick(5), Type: trace.EvTaskCreateEnd, Region: task, TaskID: id},
				trace.Event{Time: tick(1), Type: trace.EvTaskBegin, Region: task, TaskID: id},
				trace.Event{Time: tick(int64(7 + i%11)), Type: trace.EvTaskEnd, Region: task, TaskID: id},
				trace.Event{Time: tick(1), Type: trace.EvTaskSwitch},
			)
		}
		evs = append(evs,
			trace.Event{Time: tick(4), Type: trace.EvExit, Region: tw},
			trace.Event{Time: tick(1), Type: trace.EvExit, Region: par},
			trace.Event{Time: tick(1), Type: trace.EvThreadEnd},
		)
		tr.Threads[t] = evs
	}
	return tr
}

// TestSharedSyncCoverage proves the satellite-2 contract: the
// bottleneck collector's wait partition reconciles exactly with the
// trace analyzer's aggregate dispatch latency and idle-in-sync, because
// both drive the same SyncCoverage state machine.
func TestSharedSyncCoverage(t *testing.T) {
	for name, tr := range map[string]*trace.Trace{
		"late-spawn": lateSpawnTrace(),
		"starved":    starvedThiefTrace(),
		"barrier":    skewedBarrierTrace(),
		"mixed":      mixedTrace(4, 50),
	} {
		ta := trace.Analyze(tr)
		ba := Analyze(tr)
		for tid, th := range ta.PerThread {
			bw := ba.PerThread[tid]
			if bw == nil {
				bw = &ThreadWaits{ThreadID: tid}
			}
			if got, want := bw.LateSpawnWait+bw.PlainDispatchWait, th.DispatchLatency.Sum; got != want {
				t.Fatalf("%s thread %d: dispatch partition %d != DispatchLatency %d", name, tid, got, want)
			}
			if got, want := bw.StarvedWait+bw.BarrierWait+bw.UnclassifiedIdle, th.IdleInSync; got != want {
				t.Fatalf("%s thread %d: idle partition %d != IdleInSync %d", name, tid, got, want)
			}
		}
	}
}

// TestQuerySubsetsMatchFiltered checks window/thread queries equal
// filter-then-analyze, the same reference semantics trace.AnalyzeQuery
// guarantees.
func TestQuerySubsetsMatchFiltered(t *testing.T) {
	tr := mixedTrace(4, 30)
	queries := []trace.Query{
		{},
		{Threads: []int{1, 3}},
		{MinTime: 150, MaxTime: 900, Windowed: true},
		{MinTime: 200, MaxTime: 2000, Windowed: true, Threads: []int{0, 2}},
	}
	for _, q := range queries {
		want := Analyze(q.Filter(tr))
		for _, workers := range []int{1, 4} {
			if got := AnalyzeQuery(tr, q, workers); !reflect.DeepEqual(want, got) {
				t.Fatalf("query %v workers=%d diverges from filter-then-analyze", q, workers)
			}
		}
	}
}

func TestMergeFleet(t *testing.T) {
	shards := map[string]*Analysis{
		"fib":  Analyze(lateSpawnTrace()),
		"sort": Analyze(skewedBarrierTrace()),
	}
	fs := MergeFleet(shards)
	if fs.Shards != 2 {
		t.Fatalf("shards = %d, want 2", fs.Shards)
	}
	byKind := make(map[analyze.Kind]FleetKindTotal)
	for _, kt := range fs.Kinds {
		byKind[kt.Kind] = kt
	}
	if kt := byKind[analyze.LateTaskSpawn]; kt.Time != 140 || kt.WorstShard != "fib" {
		t.Fatalf("late-spawn fleet total = %+v, want 140 from fib", kt)
	}
	if kt := byKind[analyze.BarrierImbalance]; kt.Time != 500 || kt.WorstShard != "sort" {
		t.Fatalf("barrier fleet total = %+v, want 500 from sort", kt)
	}
	// Longest critical path: barrier trace (420) vs late-spawn (270).
	if fs.LongestPathShard != "sort" || fs.LongestPathLength != 420 {
		t.Fatalf("longest path = %s/%d, want sort/420", fs.LongestPathShard, fs.LongestPathLength)
	}

	var sb strings.Builder
	fs.Format(&sb)
	for _, want := range []string{"fleet bottleneck summary", "LATE_TASK_SPAWN", "worst shard fib", "longest critical path: shard sort"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("fleet format missing %q:\n%s", want, sb.String())
		}
	}
}

func TestFormatSmoke(t *testing.T) {
	a := Analyze(lateSpawnTrace())
	var sb strings.Builder
	a.Format(&sb)
	out := sb.String()
	for _, want := range []string{
		"bottleneck analysis", "LATE_TASK_SPAWN", "critical path",
		"what-if", "per-thread waits", "bottleneck findings",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("format missing %q:\n%s", want, out)
		}
	}
}

func TestEmptyTrace(t *testing.T) {
	a := Analyze(&trace.Trace{Threads: map[int][]trace.Event{}})
	if a.Threads != 0 || len(a.WaitStates) != 0 || len(a.Findings) != 0 {
		t.Fatalf("empty trace analysis = %+v", a)
	}
	var sb strings.Builder
	a.Format(&sb) // must not panic
}
