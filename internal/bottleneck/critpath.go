package bottleneck

import (
	"sort"
)

// pathSegment is one span of a thread's timeline: a task fragment
// (task != 0) or implicit-task filler (task == 0).
type pathSegment struct {
	task       uint64
	start, end int64
}

// timeline is one thread's complete, gap-free segment sequence over
// [firstTime, lastTime].
type timeline struct {
	tid  int
	segs []pathSegment
}

// buildCriticalPath reconstructs the task-graph critical path by a
// backward walk over the per-thread timelines and fills
// a.CriticalPath. The walk starts at the globally last-finishing thread
// and follows dependency edges backward:
//
//   - Inside a task fragment, the span is attributed to the task's
//     region.
//   - At a task's first fragment begin, a spawn edge jumps to the
//     creating thread at creation end; the begin-to-createEnd gap is
//     SpawnWait.
//   - At a resumed fragment's begin, a join edge jumps to the child
//     task (the latest task completion inside the suspension window);
//     the resume-to-completion gap is JoinWait. Without a candidate the
//     walk continues backward on the same thread.
//   - Inside implicit-task filler, a matched barrier instance whose
//     exit falls in the span hands off to the instance's last arriver
//     at its arrival time; the release span (exit - lastArrival) is
//     Other. Each instance is traversed at most once.
//
// Every step moves the cursor strictly backward in time, attributing
// each span to exactly one bucket, so sum(Regions.Time) + SpawnWait +
// JoinWait + Other == Length. If the walk gets stuck before the global
// start (a thread began later than the recording with no inbound
// edge), the remainder is Other.
func buildCriticalPath(a *Analysis, threads map[int]*threadCollector, tids []int, tasks map[uint64]*taskInfo, instances map[instanceKey]*instance, visitIndex map[int][]visitRef) {
	cp := &a.CriticalPath
	cp.StartTime = a.StartTime
	cp.EndTime = a.EndTime
	cp.Length = a.EndTime - a.StartTime
	cp.Regions = []PathRegion{}
	if cp.Length <= 0 {
		return
	}

	// Per-thread timelines.
	lines := make(map[int]*timeline, len(tids))
	totalSegs := 0
	for _, tid := range tids {
		tc := threads[tid]
		if !tc.firstValid {
			continue
		}
		tl := &timeline{tid: tid}
		cur := tc.firstTime
		for _, f := range tc.frags {
			if f.start > cur {
				tl.segs = append(tl.segs, pathSegment{0, cur, f.start})
			}
			if f.end > f.start {
				tl.segs = append(tl.segs, pathSegment{f.task, f.start, f.end})
			}
			if f.end > cur {
				cur = f.end
			}
		}
		if tc.inFrag && tc.lastTime > cur {
			// A fragment still open at stream end (truncated trace):
			// close it at the last observed time.
			if tc.fragStart > cur {
				tl.segs = append(tl.segs, pathSegment{0, cur, tc.fragStart})
				cur = tc.fragStart
			}
			tl.segs = append(tl.segs, pathSegment{tc.curTask, cur, tc.lastTime})
			cur = tc.lastTime
		}
		if tc.lastTime > cur {
			tl.segs = append(tl.segs, pathSegment{0, cur, tc.lastTime})
		}
		lines[tid] = tl
		totalSegs += len(tl.segs)
	}

	// Global task completions, sorted by time, for join edges.
	type completion struct {
		time int64
		tid  int
		task uint64
	}
	var completions []completion
	for _, tid := range tids {
		for _, e := range threads[tid].ends {
			completions = append(completions, completion{e.time, tid, e.id})
		}
	}
	sort.Slice(completions, func(i, j int) bool {
		if completions[i].time != completions[j].time {
			return completions[i].time < completions[j].time
		}
		if completions[i].tid != completions[j].tid {
			return completions[i].tid < completions[j].tid
		}
		return completions[i].task < completions[j].task
	})

	// Per-task fragments sorted by end, for suspension windows.
	taskFrags := make(map[uint64][]span)
	for _, tid := range tids {
		for _, f := range threads[tid].frags {
			taskFrags[f.task] = append(taskFrags[f.task], span{f.start, f.end})
		}
	}
	for id := range taskFrags {
		fs := taskFrags[id]
		sort.Slice(fs, func(i, j int) bool { return fs[i].end < fs[j].end })
	}

	// Walk state.
	pathTime := make(map[string]int64)
	attr := func(region string, d int64) {
		if d > 0 {
			pathTime[region] += d
			cp.Segments++
		}
	}
	regionOf := func(task uint64) string {
		if task == 0 {
			return ImplicitRegion
		}
		if ti := tasks[task]; ti != nil {
			return ti.region
		}
		return UnknownRegion
	}

	// Start on the thread whose timeline ends last (tie: smallest tid).
	w := -1
	for _, tid := range tids {
		tc := threads[tid]
		if !tc.firstValid {
			continue
		}
		if w == -1 || tc.lastTime > threads[w].lastTime {
			w = tid
		}
	}
	if w == -1 {
		return
	}
	t := threads[w].lastTime
	if t < cp.EndTime {
		// Another thread's extent ends the recording but has no events?
		// Cannot happen (EndTime is a thread's lastTime), but guard.
		cp.Other += cp.EndTime - t
	}

	consumed := make(map[instanceKey]bool)
	maxSteps := 4*totalSegs + 16
	for steps := 0; t > cp.StartTime; steps++ {
		if steps >= maxSteps {
			cp.Other += t - cp.StartTime
			break
		}
		tl := lines[w]
		seg := segmentAt(tl, t)
		if seg == nil {
			// Below this thread's first event with no inbound edge.
			cp.Other += t - cp.StartTime
			break
		}
		if seg.task != 0 {
			attr(regionOf(seg.task), t-seg.start)
			t = seg.start
			ti := tasks[seg.task]
			if ti != nil && ti.hasBegin && ti.beginThread == w && ti.firstBegin == seg.start {
				// First fragment: spawn edge to the creator.
				if ti.created && ti.createEnd <= t {
					cp.SpawnWait += t - ti.createEnd
					w = ti.creator
					t = ti.createEnd
				}
				// Unknown creation: continue backward on this thread.
			} else {
				// Resumed fragment: join edge to the latest completion
				// in the suspension window.
				suspStart := int64(-1)
				if fs := taskFrags[seg.task]; len(fs) > 0 {
					i := sort.Search(len(fs), func(i int) bool { return fs[i].end > seg.start })
					if i > 0 {
						suspStart = fs[i-1].end
					}
				}
				i := sort.Search(len(completions), func(i int) bool { return completions[i].time > t })
				for i--; i >= 0; i-- {
					c := completions[i]
					if c.time < suspStart {
						break
					}
					if c.task == seg.task {
						continue
					}
					cp.JoinWait += t - c.time
					w = c.tid
					t = c.time
					break
				}
				// Without a candidate the walk continues backward on
				// this thread.
			}
		} else {
			// Implicit filler: prefer a barrier hand-off whose exit
			// falls inside the span.
			if ref := latestBarrierExit(visitIndex[w], seg.start, t, consumed); ref != nil {
				inst := ref.inst
				attr(ImplicitRegion, t-ref.exit)
				consumed[inst.key] = true
				last, arr := inst.lastThread, inst.lastArrival
				if arr > ref.exit {
					arr = ref.exit // malformed clocks: never move forward
				}
				cp.Other += ref.exit - arr
				w = last
				t = arr
			} else {
				attr(ImplicitRegion, t-seg.start)
				t = seg.start
			}
		}
	}

	// Fold the per-region path time into the sorted report with what-if
	// projections.
	names := make([]string, 0, len(pathTime))
	for name := range pathTime {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		d := pathTime[name]
		pr := PathRegion{
			Region:   name,
			Time:     d,
			Share:    float64(d) / float64(cp.Length),
			WhatIf10: d / 10,
			WhatIf25: d / 4,
			WhatIf50: d / 2,
		}
		cp.Regions = append(cp.Regions, pr)
	}
	sort.SliceStable(cp.Regions, func(i, j int) bool { return cp.Regions[i].Time > cp.Regions[j].Time })
}

// segmentAt returns the segment of tl covering (start, t], or nil when
// t is at or before the thread's first event.
func segmentAt(tl *timeline, t int64) *pathSegment {
	if tl == nil || len(tl.segs) == 0 {
		return nil
	}
	// First segment whose end >= t; its start must be < t.
	i := sort.Search(len(tl.segs), func(i int) bool { return tl.segs[i].end >= t })
	if i == len(tl.segs) {
		return nil
	}
	if tl.segs[i].start >= t {
		return nil
	}
	return &tl.segs[i]
}

// latestBarrierExit finds the unconsumed matched-barrier visit of one
// thread with the largest exit in (start, end], or nil.
func latestBarrierExit(refs []visitRef, start, end int64, consumed map[instanceKey]bool) *visitRef {
	// refs are sorted by exit; binary search the upper bound.
	i := sort.Search(len(refs), func(i int) bool { return refs[i].exit > end })
	for i--; i >= 0; i-- {
		r := &refs[i]
		if r.exit <= start {
			return nil
		}
		if !consumed[r.inst.key] {
			return r
		}
	}
	return nil
}
