package bottleneck

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/analyze"
	"repro/internal/stats"
)

// Format writes the human-readable bottleneck report.
func (a *Analysis) Format(w io.Writer) {
	fmt.Fprintf(w, "bottleneck analysis: %d thread(s), wall %s\n",
		a.Threads, stats.FormatNs(a.WallTime))

	fmt.Fprintln(w, "wait states:")
	if len(a.WaitStates) == 0 {
		fmt.Fprintln(w, "  none classified")
	}
	for _, ws := range a.WaitStates {
		cause := "?"
		if ws.CauseThread >= 0 {
			cause = fmt.Sprintf("thread %d", ws.CauseThread)
		}
		fmt.Fprintf(w, "  %-18s thread %d <- %s @ %s: %s (%d interval(s))\n",
			ws.Kind, ws.Thread, cause, ws.Region, stats.FormatNs(ws.Time), ws.Count)
	}

	if len(a.Barriers) > 0 {
		fmt.Fprintln(w, "barriers:")
		for _, b := range a.Barriers {
			fmt.Fprintf(w, "  %s #%d: %d thread(s), skew %s (last: thread %d)\n",
				b.Region, b.Ordinal, b.Threads, stats.FormatNs(b.Skew), b.LastThread)
		}
	}

	cp := &a.CriticalPath
	fmt.Fprintf(w, "critical path: %s (spawn wait %s, join wait %s, other %s)\n",
		stats.FormatNs(cp.Length), stats.FormatNs(cp.SpawnWait),
		stats.FormatNs(cp.JoinWait), stats.FormatNs(cp.Other))
	for i, pr := range cp.Regions {
		fmt.Fprintf(w, "  %2d. %-24s %10s  %5.1f%%  what-if -10%%/-25%%/-50%%: %s/%s/%s\n",
			i+1, pr.Region, stats.FormatNs(pr.Time), 100*pr.Share,
			stats.FormatNs(pr.WhatIf10), stats.FormatNs(pr.WhatIf25), stats.FormatNs(pr.WhatIf50))
	}

	if len(a.PerThread) > 0 {
		fmt.Fprintln(w, "per-thread waits:")
		tids := make([]int, 0, len(a.PerThread))
		for tid := range a.PerThread {
			tids = append(tids, tid)
		}
		sort.Ints(tids)
		for _, tid := range tids {
			tw := a.PerThread[tid]
			fmt.Fprintf(w, "  thread %d: late-spawn %s, dispatch %s, starved %s, barrier %s, unclassified %s\n",
				tid, stats.FormatNs(tw.LateSpawnWait), stats.FormatNs(tw.PlainDispatchWait),
				stats.FormatNs(tw.StarvedWait), stats.FormatNs(tw.BarrierWait),
				stats.FormatNs(tw.UnclassifiedIdle))
		}
	}

	fmt.Fprintln(w, "bottleneck findings:")
	analyze.Format(w, a.Findings)
}

// FleetKindTotal is one wait-state kind summed across a fleet's shards,
// with the worst shard called out.
type FleetKindTotal struct {
	Kind       analyze.Kind
	Time       int64
	Count      int64
	WorstShard string
	WorstTime  int64
}

// FleetSummary aggregates per-shard bottleneck analyses of one fleet
// experiment: fleet-summed wait-state totals per kind with the worst
// shard each, and the shard with the longest critical path (the fleet's
// wall-time bound when shards run concurrently).
type FleetSummary struct {
	Shards            int
	Kinds             []FleetKindTotal
	LongestPathShard  string
	LongestPathLength int64
}

// MergeFleet folds per-shard analyses (keyed by shard/stream id) into
// the fleet summary. Iteration is in sorted-id order and ties keep the
// earlier id, so the summary is deterministic.
func MergeFleet(shards map[string]*Analysis) *FleetSummary {
	fs := &FleetSummary{Kinds: []FleetKindTotal{}}
	ids := make([]string, 0, len(shards))
	for id := range shards {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	perKind := make(map[analyze.Kind]*FleetKindTotal)
	var kinds []analyze.Kind
	for _, id := range ids {
		a := shards[id]
		if a == nil {
			continue
		}
		fs.Shards++
		shardKind := make(map[analyze.Kind]int64)
		for _, ws := range a.WaitStates {
			shardKind[ws.Kind] += ws.Time
			kt, ok := perKind[ws.Kind]
			if !ok {
				kt = &FleetKindTotal{Kind: ws.Kind}
				perKind[ws.Kind] = kt
				kinds = append(kinds, ws.Kind)
			}
			kt.Time += ws.Time
			kt.Count += ws.Count
		}
		for kind, t := range shardKind {
			kt := perKind[kind]
			if t > kt.WorstTime || kt.WorstShard == "" {
				kt.WorstTime = t
				kt.WorstShard = id
			}
		}
		if a.CriticalPath.Length > fs.LongestPathLength || fs.LongestPathShard == "" {
			fs.LongestPathLength = a.CriticalPath.Length
			fs.LongestPathShard = id
		}
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		fs.Kinds = append(fs.Kinds, *perKind[k])
	}
	return fs
}

// Format writes the fleet bottleneck summary.
func (fs *FleetSummary) Format(w io.Writer) {
	fmt.Fprintf(w, "fleet bottleneck summary (%d shard(s)):\n", fs.Shards)
	if len(fs.Kinds) == 0 {
		fmt.Fprintln(w, "  no wait states classified")
	}
	for _, kt := range fs.Kinds {
		fmt.Fprintf(w, "  %-18s fleet total %s over %d interval(s); worst shard %s (%s)\n",
			kt.Kind, stats.FormatNs(kt.Time), kt.Count, kt.WorstShard, stats.FormatNs(kt.WorstTime))
	}
	if fs.LongestPathShard != "" {
		fmt.Fprintf(w, "  longest critical path: shard %s (%s)\n",
			fs.LongestPathShard, stats.FormatNs(fs.LongestPathLength))
	}
}
