package bottleneck

import (
	"fmt"
	"sort"

	"repro/internal/analyze"
	"repro/internal/stats"
)

// hints per wait-state kind: the optimization advice the pattern
// prescribes.
var kindHints = map[analyze.Kind]string{
	analyze.LateTaskSpawn:    "the consumer outran the producer: spawn tasks earlier, or parallelize/split the creating loop",
	analyze.StarvedThief:     "work existed but was not distributed: check scheduler stealing, task affinity, or create tasks from more threads",
	analyze.BarrierImbalance: "threads reach the barrier at skewed times: balance the work before it or drop the barrier if redundant",
}

// emitFindings renders the classified wait states and the critical-path
// hotspot as typed findings with severity and root-cause attribution.
// Wait states are aggregated per (kind, cause thread, region) across
// victims; severity is the aggregate wait as a fraction of the total
// thread-time budget (WallTime x Threads). Ordered by severity
// (descending), stable on the deterministic wait-state order.
func emitFindings(a *Analysis) []analyze.Finding {
	findings := []analyze.Finding{}
	budget := a.WallTime * int64(a.Threads)
	if budget <= 0 {
		budget = 1
	}

	type aggKey struct {
		kind   analyze.Kind
		cause  int
		region string
	}
	type agg struct {
		time    int64
		count   int64
		victim  int
		victims int
	}
	byKey := make(map[aggKey]*agg)
	var order []aggKey
	for _, ws := range a.WaitStates {
		k := aggKey{ws.Kind, ws.CauseThread, ws.Region}
		g, ok := byKey[k]
		if !ok {
			g = &agg{victim: ws.Thread}
			byKey[k] = g
			order = append(order, k)
		}
		if g.victims == 0 || ws.Thread != g.victim {
			g.victims++
			if g.victims > 1 {
				g.victim = -1
			}
		}
		g.time += ws.Time
		g.count += ws.Count
	}

	for _, k := range order {
		g := byKey[k]
		if g.time <= 0 {
			continue
		}
		victims := "1 thread"
		if g.victims > 1 {
			victims = fmt.Sprintf("%d threads", g.victims)
		}
		findings = append(findings, analyze.Finding{
			Kind:      k.kind,
			Severity:  clamp01(float64(g.time) / float64(budget)),
			Construct: k.region,
			Evidence: fmt.Sprintf("%s waited %s across %d interval(s)",
				victims, stats.FormatNs(g.time), g.count),
			Hint: kindHints[k.kind],
			Attribution: &analyze.Attribution{
				Victim:      g.victim,
				CauseThread: k.cause,
				CauseRegion: k.region,
				WaitNs:      g.time,
			},
		})
	}

	// Critical-path hotspot: the top explicit region on the path.
	for _, pr := range a.CriticalPath.Regions {
		if pr.Region == ImplicitRegion || pr.Region == UnknownRegion {
			continue
		}
		findings = append(findings, analyze.Finding{
			Kind:      analyze.CriticalPathHotspot,
			Severity:  clamp01(pr.Share),
			Construct: pr.Region,
			Evidence: fmt.Sprintf("%s of the %s critical path (%.0f%%); -50%% would save up to %s",
				stats.FormatNs(pr.Time), stats.FormatNs(a.CriticalPath.Length),
				100*pr.Share, stats.FormatNs(pr.WhatIf50)),
			Hint: "only shortening critical-path regions shortens the run; optimize here first",
		})
		break
	}

	sort.SliceStable(findings, func(i, j int) bool { return findings[i].Severity > findings[j].Severity })
	return findings
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
