package cube

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/region"
	"repro/internal/stats"
)

// RenderOptions controls text rendering.
type RenderOptions struct {
	// MaxDepth prunes the tree below this depth (0 = unlimited).
	MaxDepth int
	// PerThread appends a per-thread inclusive-time breakdown per node.
	PerThread bool
	// MinSumNs hides nodes whose inclusive sum is below the threshold.
	MinSumNs int64
}

// Render writes the report as an indented text tree, the plain-text
// counterpart of the CUBE view in the paper's Fig. 5: the main (implicit
// task) tree first, then the aggregate task trees beside it.
func Render(w io.Writer, r *Report, opt RenderOptions) error {
	bw := &errWriter{w: w}
	fmt.Fprintf(bw, "=== MAIN TREE (implicit tasks, %d threads) ===\n", r.NumThreads)
	renderNode(bw, r.Main, 0, r, opt)
	if len(r.Tasks) > 0 {
		fmt.Fprintf(bw, "\n=== TASK TREES (merged over all instances) ===\n")
		for _, t := range r.Tasks {
			renderNode(bw, t, 0, r, opt)
		}
	}
	fmt.Fprintf(bw, "\nmax concurrently active task instances per thread: %d\n", r.MaxConcurrent)
	return bw.err
}

func renderNode(w io.Writer, n *Node, depth int, r *Report, opt RenderOptions) {
	if opt.MaxDepth > 0 && depth > opt.MaxDepth {
		return
	}
	if opt.MinSumNs > 0 && n.Dur.Sum < opt.MinSumNs && depth > 0 {
		return
	}
	indent := strings.Repeat("  ", depth)
	name := n.Name()
	if n.Kind == core.KindStub {
		name += " [stub]"
	}
	fmt.Fprintf(w, "%-52s visits=%-9d incl=%-10s excl=%-10s mean=%-10s min=%-10s max=%-10s\n",
		indent+name, n.Visits,
		stats.FormatNs(n.Dur.Sum), stats.FormatNs(n.ExclusiveSum()),
		stats.FormatNs(int64(n.Dur.Mean())), stats.FormatNs(n.Dur.Min), stats.FormatNs(n.Dur.Max))
	if opt.PerThread {
		for tid := 0; tid < r.NumThreads; tid++ {
			if d, ok := n.PerThreadDur[tid]; ok {
				fmt.Fprintf(w, "%s  [thread %d] visits=%d incl=%s excl=%s\n",
					indent, tid, n.PerThreadVisits[tid], stats.FormatNs(d.Sum),
					stats.FormatNs(n.ExclusiveSumThread(tid)))
			}
		}
	}
	for _, c := range n.Children {
		renderNode(w, c, depth+1, r, opt)
	}
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return len(p), nil
	}
	n, err := e.w.Write(p)
	if err != nil {
		e.err = err
	}
	return n, nil
}

// WriteCSV emits one row per node of the main tree and all task trees:
// tree,path,kind,type,visits,sum_ns,min_ns,max_ns,mean_ns,excl_ns.
func WriteCSV(w io.Writer, r *Report) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"tree", "path", "kind", "type", "visits", "sum_ns", "min_ns", "max_ns", "mean_ns", "excl_ns"}); err != nil {
		return err
	}
	emit := func(tree string, root *Node) {
		root.Walk(func(n *Node, _ int) {
			typ := ""
			if n.Region != nil {
				typ = n.Region.Type.String()
			}
			cw.Write([]string{
				tree,
				strings.Join(n.Path(), "/"),
				n.Kind.String(),
				typ,
				strconv.FormatInt(n.Visits, 10),
				strconv.FormatInt(n.Dur.Sum, 10),
				strconv.FormatInt(n.Dur.Min, 10),
				strconv.FormatInt(n.Dur.Max, 10),
				strconv.FormatInt(int64(n.Dur.Mean()), 10),
				strconv.FormatInt(n.ExclusiveSum(), 10),
			})
		})
	}
	emit("main", r.Main)
	for _, t := range r.Tasks {
		emit("task:"+t.Region.Name, t)
	}
	cw.Flush()
	return cw.Error()
}

// jsonNode is the serialized node form (regions flattened).
type jsonNode struct {
	Kind       string                   `json:"kind"`
	Region     *jsonRegion              `json:"region,omitempty"`
	ParamName  string                   `json:"param_name,omitempty"`
	ParamValue int64                    `json:"param_value,omitempty"`
	ParamStr   string                   `json:"param_str,omitempty"`
	Visits     int64                    `json:"visits"`
	Sum        int64                    `json:"sum_ns"`
	Min        int64                    `json:"min_ns"`
	Max        int64                    `json:"max_ns"`
	Count      int64                    `json:"count"`
	PerThread  map[string]jsonThreadDur `json:"per_thread,omitempty"`
	Children   []*jsonNode              `json:"children,omitempty"`
}

type jsonThreadDur struct {
	Visits int64 `json:"visits"`
	Sum    int64 `json:"sum_ns"`
	Min    int64 `json:"min_ns"`
	Max    int64 `json:"max_ns"`
	Count  int64 `json:"count"`
}

type jsonRegion struct {
	Name string `json:"name"`
	File string `json:"file,omitempty"`
	Line int    `json:"line,omitempty"`
	Type string `json:"type"`
}

type jsonReport struct {
	NumThreads    int            `json:"num_threads"`
	MaxConcurrent int            `json:"max_concurrent_tasks"`
	MaxPerThread  map[string]int `json:"max_concurrent_per_thread,omitempty"`
	Main          *jsonNode      `json:"main"`
	Tasks         []*jsonNode    `json:"tasks,omitempty"`
}

var kindNames = map[core.NodeKind]string{
	core.KindRegion:    "region",
	core.KindStub:      "stub",
	core.KindParameter: "parameter",
}

var kindFromName = map[string]core.NodeKind{
	"region":    core.KindRegion,
	"stub":      core.KindStub,
	"parameter": core.KindParameter,
}

var typeFromName = func() map[string]region.Type {
	m := make(map[string]region.Type)
	for t := region.UserFunction; t <= region.Parameter; t++ {
		m[t.String()] = t
	}
	return m
}()

func toJSONNode(n *Node) *jsonNode {
	jn := &jsonNode{
		Kind:       kindNames[n.Kind],
		ParamName:  n.ParamName,
		ParamValue: n.ParamValue,
		ParamStr:   n.ParamStr,
		Visits:     n.Visits,
		Sum:        n.Dur.Sum,
		Min:        n.Dur.Min,
		Max:        n.Dur.Max,
		Count:      n.Dur.Count,
	}
	if n.Region != nil {
		jn.Region = &jsonRegion{Name: n.Region.Name, File: n.Region.File, Line: n.Region.Line, Type: n.Region.Type.String()}
	}
	if len(n.PerThreadDur) > 0 {
		jn.PerThread = make(map[string]jsonThreadDur, len(n.PerThreadDur))
		for tid, d := range n.PerThreadDur {
			jn.PerThread[strconv.Itoa(tid)] = jsonThreadDur{
				Visits: n.PerThreadVisits[tid], Sum: d.Sum, Min: d.Min, Max: d.Max, Count: d.Count,
			}
		}
	}
	for _, c := range n.Children {
		jn.Children = append(jn.Children, toJSONNode(c))
	}
	return jn
}

func fromJSONNode(jn *jsonNode, reg *region.Registry, parent *Node) *Node {
	n := &Node{
		Kind:       kindFromName[jn.Kind],
		ParamName:  jn.ParamName,
		ParamValue: jn.ParamValue,
		ParamStr:   jn.ParamStr,
		Visits:     jn.Visits,
		Dur:        stats.Dur{Count: jn.Count, Sum: jn.Sum, Min: jn.Min, Max: jn.Max},
		Parent:     parent,
	}
	if jn.Region != nil {
		n.Region = reg.Register(jn.Region.Name, jn.Region.File, jn.Region.Line, typeFromName[jn.Region.Type])
	}
	if len(jn.PerThread) > 0 {
		n.PerThreadDur = make(map[int]stats.Dur, len(jn.PerThread))
		n.PerThreadVisits = make(map[int]int64, len(jn.PerThread))
		for k, d := range jn.PerThread {
			tid, _ := strconv.Atoi(k)
			n.PerThreadDur[tid] = stats.Dur{Count: d.Count, Sum: d.Sum, Min: d.Min, Max: d.Max}
			n.PerThreadVisits[tid] = d.Visits
		}
	}
	for _, jc := range jn.Children {
		n.Children = append(n.Children, fromJSONNode(jc, reg, n))
	}
	return n
}

// WriteJSON serializes the report (regions flattened by name/file/line).
func WriteJSON(w io.Writer, r *Report) error {
	jr := jsonReport{
		NumThreads:    r.NumThreads,
		MaxConcurrent: r.MaxConcurrent,
		Main:          toJSONNode(r.Main),
	}
	if len(r.MaxConcurrentPerThread) > 0 {
		jr.MaxPerThread = make(map[string]int, len(r.MaxConcurrentPerThread))
		for tid, v := range r.MaxConcurrentPerThread {
			jr.MaxPerThread[strconv.Itoa(tid)] = v
		}
	}
	for _, t := range r.Tasks {
		jr.Tasks = append(jr.Tasks, toJSONNode(t))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jr)
}

// ReadJSON deserializes a report written by WriteJSON, interning regions
// into reg (use a fresh registry to keep the default one clean).
func ReadJSON(rd io.Reader, reg *region.Registry) (*Report, error) {
	var jr jsonReport
	if err := json.NewDecoder(rd).Decode(&jr); err != nil {
		return nil, fmt.Errorf("cube: decoding report: %w", err)
	}
	if jr.Main == nil {
		return nil, fmt.Errorf("cube: report has no main tree")
	}
	rep := &Report{
		NumThreads:             jr.NumThreads,
		MaxConcurrent:          jr.MaxConcurrent,
		Main:                   fromJSONNode(jr.Main, reg, nil),
		MaxConcurrentPerThread: make(map[int]int),
	}
	for k, v := range jr.MaxPerThread {
		tid, _ := strconv.Atoi(k)
		rep.MaxConcurrentPerThread[tid] = v
	}
	for _, jt := range jr.Tasks {
		rep.Tasks = append(rep.Tasks, fromJSONNode(jt, reg, nil))
	}
	return rep, nil
}
