package cube

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/region"
)

// buildReport creates a one-thread report with a par->bar->task shape
// where the task runs taskNs and the barrier idles idleNs.
func buildReport(t *testing.T, reg *region.Registry, taskNs, idleNs int64, extraRegion bool) *Report {
	t.Helper()
	par := reg.Register("par", "d.go", 1, region.Parallel)
	bar := reg.Register("bar", "d.go", 2, region.ImplicitBarrier)
	task := reg.Register("work", "d.go", 3, region.Task)
	extra := reg.Register("extra", "d.go", 4, region.UserFunction)

	clk := clock.NewManual(0)
	p := core.NewThreadProfile(0, clk)
	p.Enter(par)
	if extraRegion {
		p.Enter(extra)
		clk.Advance(7)
		p.Exit(extra)
	}
	p.Enter(bar)
	p.TaskBegin(task)
	clk.Advance(taskNs)
	p.TaskEnd()
	clk.Advance(idleNs)
	p.Exit(bar)
	p.Exit(par)
	p.Finish()
	return Aggregate([]*core.ThreadProfile{p})
}

func TestDiffMatchesByPath(t *testing.T) {
	reg := region.NewRegistry()
	a := buildReport(t, reg, 100, 10, false)
	b := buildReport(t, reg, 250, 10, false)
	rd := Diff(a, b)

	bar := rd.Main.Children[0].Children[0] // PROGRAM -> par -> bar
	if bar.Name != "bar" {
		t.Fatalf("unexpected child order: %s", bar.Name)
	}
	if bar.DeltaSum() != 150 {
		t.Errorf("bar delta = %d, want 150", bar.DeltaSum())
	}
	if len(rd.Tasks) != 1 || rd.Tasks[0].DeltaSum() != 150 {
		t.Errorf("task tree delta wrong: %+v", rd.Tasks)
	}
	if r := rd.Tasks[0].Ratio(); r < 2.49 || r > 2.51 {
		t.Errorf("ratio = %f, want 2.5", r)
	}
}

func TestDiffDetectsMissingNodes(t *testing.T) {
	regA := region.NewRegistry()
	regB := region.NewRegistry()
	a := buildReport(t, regA, 100, 10, true)  // has "extra"
	b := buildReport(t, regB, 100, 10, false) // does not
	rd := Diff(a, b)

	parD := rd.Main.Children[0]
	var extraD *DiffNode
	for _, c := range parD.Children {
		if c.Name == "extra" {
			extraD = c
		}
	}
	if extraD == nil {
		t.Fatal("extra node missing from diff")
	}
	if extraD.B != nil || extraD.A == nil {
		t.Error("extra should be only-in-A")
	}
	var buf bytes.Buffer
	if err := RenderDiff(&buf, rd); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "[only in A]") {
		t.Error("render missing only-in-A marker")
	}
}

func TestDiffOnlyInBTaskTree(t *testing.T) {
	regA := region.NewRegistry()
	a := buildReport(t, regA, 100, 10, false)

	// B has an additional task construct.
	regB := region.NewRegistry()
	par := regB.Register("par", "d.go", 1, region.Parallel)
	bar := regB.Register("bar", "d.go", 2, region.ImplicitBarrier)
	task := regB.Register("work", "d.go", 3, region.Task)
	other := regB.Register("other", "d.go", 9, region.Task)
	clk := clock.NewManual(0)
	p := core.NewThreadProfile(0, clk)
	p.Enter(par)
	p.Enter(bar)
	p.TaskBegin(task)
	clk.Advance(100)
	p.TaskEnd()
	p.TaskBegin(other)
	clk.Advance(5)
	p.TaskEnd()
	p.Exit(bar)
	p.Exit(par)
	p.Finish()
	b := Aggregate([]*core.ThreadProfile{p})

	rd := Diff(a, b)
	if len(rd.Tasks) != 2 {
		t.Fatalf("task diffs = %d, want 2", len(rd.Tasks))
	}
	found := false
	for _, td := range rd.Tasks {
		if td.Name == "other" && td.A == nil && td.B != nil {
			found = true
		}
	}
	if !found {
		t.Error("only-in-B task tree not reported")
	}
}

func TestTopRegressions(t *testing.T) {
	reg := region.NewRegistry()
	a := buildReport(t, reg, 100, 10, false)
	b := buildReport(t, reg, 600, 10, false)
	rd := Diff(a, b)
	top := rd.TopRegressions(3)
	if len(top) != 3 {
		t.Fatalf("top = %d entries", len(top))
	}
	// Largest absolute delta must come first and be >= the next.
	if rd.abs(top[0].DeltaSum()) < rd.abs(top[1].DeltaSum()) {
		t.Error("regressions not sorted by |delta|")
	}
	if top[0].DeltaSum() != 500 {
		t.Errorf("top regression delta = %d, want 500", top[0].DeltaSum())
	}
}

func TestDiffIdentityIsZero(t *testing.T) {
	reg := region.NewRegistry()
	a := buildReport(t, reg, 100, 10, false)
	rd := Diff(a, a)
	rd.Main.Walk(func(d *DiffNode, _ int) {
		if d.DeltaSum() != 0 || d.DeltaVisits() != 0 {
			t.Errorf("self-diff nonzero at %s", d.Name)
		}
	})
}
