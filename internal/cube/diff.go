package cube

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/stats"
)

// The paper chooses a runtime-independent call-tree structure precisely
// so that "results from multiple performance runs" stay comparable
// (Section IV-B3). Diff exploits that: two reports of the same program
// merge node-by-node along identical paths, exposing regressions per
// region — the workflow of the Section VI case study (before/after the
// cut-off) as a first-class operation.

// DiffNode is one node of a structural report diff. A and B are nil when
// the node is missing on that side.
type DiffNode struct {
	Name     string
	Kind     core.NodeKind
	A, B     *Node
	Children []*DiffNode
}

// DeltaSum returns B's inclusive sum minus A's (missing side = 0).
func (d *DiffNode) DeltaSum() int64 {
	var a, b int64
	if d.A != nil {
		a = d.A.Dur.Sum
	}
	if d.B != nil {
		b = d.B.Dur.Sum
	}
	return b - a
}

// DeltaVisits returns B's visits minus A's.
func (d *DiffNode) DeltaVisits() int64 {
	var a, b int64
	if d.A != nil {
		a = d.A.Visits
	}
	if d.B != nil {
		b = d.B.Visits
	}
	return b - a
}

// Ratio returns B/A for the inclusive sums (0 when A is missing/zero).
func (d *DiffNode) Ratio() float64 {
	if d.A == nil || d.A.Dur.Sum == 0 {
		return 0
	}
	var b int64
	if d.B != nil {
		b = d.B.Dur.Sum
	}
	return float64(b) / float64(d.A.Dur.Sum)
}

// Walk visits the diff tree depth-first pre-order.
func (d *DiffNode) Walk(fn func(n *DiffNode, depth int)) { d.walk(fn, 0) }

func (d *DiffNode) walk(fn func(*DiffNode, int), depth int) {
	fn(d, depth)
	for _, c := range d.Children {
		c.walk(fn, depth+1)
	}
}

// ReportDiff is the structural diff of two reports.
type ReportDiff struct {
	Main  *DiffNode
	Tasks []*DiffNode
}

// Diff computes the structural diff of two reports (A = baseline,
// B = candidate). Nodes are matched by display name and kind along the
// path, which is stable across runs by the paper's design.
func Diff(a, b *Report) *ReportDiff {
	rd := &ReportDiff{Main: diffNodes(a.Main, b.Main)}
	seen := map[string]bool{}
	for _, ta := range a.Tasks {
		name := ta.Name()
		seen[name] = true
		var tb *Node
		if b != nil {
			tb = b.TaskTree(ta.Region.Name)
		}
		rd.Tasks = append(rd.Tasks, diffNodes(ta, tb))
	}
	if b != nil {
		for _, tb := range b.Tasks {
			if !seen[tb.Name()] {
				rd.Tasks = append(rd.Tasks, diffNodes(nil, tb))
			}
		}
	}
	return rd
}

// diffNodes merges two subtrees by child name+kind.
func diffNodes(a, b *Node) *DiffNode {
	d := &DiffNode{A: a, B: b}
	switch {
	case a != nil:
		d.Name, d.Kind = a.Name(), a.Kind
	case b != nil:
		d.Name, d.Kind = b.Name(), b.Kind
	}
	type key struct {
		name string
		kind core.NodeKind
	}
	order := []key{}
	av := map[key]*Node{}
	bv := map[key]*Node{}
	if a != nil {
		for _, c := range a.Children {
			k := key{c.Name(), c.Kind}
			if _, ok := av[k]; !ok {
				order = append(order, k)
			}
			av[k] = c
		}
	}
	if b != nil {
		for _, c := range b.Children {
			k := key{c.Name(), c.Kind}
			if _, ok := av[k]; !ok {
				if _, ok2 := bv[k]; !ok2 {
					order = append(order, k)
				}
			}
			bv[k] = c
		}
	}
	for _, k := range order {
		d.Children = append(d.Children, diffNodes(av[k], bv[k]))
	}
	return d
}

// TopRegressions returns the n diff nodes with the largest absolute
// inclusive-time delta, ordered by |delta| descending.
func (rd *ReportDiff) TopRegressions(n int) []*DiffNode {
	var all []*DiffNode
	collect := func(root *DiffNode) {
		root.Walk(func(d *DiffNode, _ int) { all = append(all, d) })
	}
	collect(rd.Main)
	for _, t := range rd.Tasks {
		collect(t)
	}
	sort.SliceStable(all, func(i, j int) bool {
		di, dj := rd.abs(all[i].DeltaSum()), rd.abs(all[j].DeltaSum())
		return di > dj
	})
	if n > len(all) {
		n = len(all)
	}
	return all[:n]
}

func (rd *ReportDiff) abs(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// RenderDiff writes the diff as an indented tree: baseline, candidate,
// delta and ratio per node. Nodes present on only one side are marked.
func RenderDiff(w io.Writer, rd *ReportDiff) error {
	ew := &errWriter{w: w}
	fmt.Fprintln(ew, "=== MAIN TREE DIFF (A -> B) ===")
	renderDiffNode(ew, rd.Main, 0)
	if len(rd.Tasks) > 0 {
		fmt.Fprintln(ew, "\n=== TASK TREE DIFFS ===")
		for _, t := range rd.Tasks {
			renderDiffNode(ew, t, 0)
		}
	}
	return ew.err
}

func renderDiffNode(w io.Writer, d *DiffNode, depth int) {
	indent := ""
	for i := 0; i < depth; i++ {
		indent += "  "
	}
	mark := ""
	switch {
	case d.A == nil:
		mark = " [only in B]"
	case d.B == nil:
		mark = " [only in A]"
	}
	var aSum, bSum int64
	if d.A != nil {
		aSum = d.A.Dur.Sum
	}
	if d.B != nil {
		bSum = d.B.Dur.Sum
	}
	fmt.Fprintf(w, "%-48s A=%-10s B=%-10s delta=%-11s visits%+d%s\n",
		indent+d.Name,
		stats.FormatNs(aSum), stats.FormatNs(bSum),
		stats.FormatNs(d.DeltaSum()), d.DeltaVisits(), mark)
	for _, c := range d.Children {
		renderDiffNode(w, c, depth+1)
	}
}
