package cube

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/region"
)

// buildTwoThreadProfiles constructs two deterministic thread profiles
// with a shared call-path structure and a task construct.
func buildTwoThreadProfiles(t *testing.T) ([]*core.ThreadProfile, *region.Registry) {
	t.Helper()
	reg := region.NewRegistry()
	par := reg.Register("par", "x.go", 1, region.Parallel)
	bar := reg.Register("bar", "x.go", 2, region.ImplicitBarrier)
	task := reg.Register("work", "x.go", 3, region.Task)

	mk := func(tid int, taskTimes []int64) *core.ThreadProfile {
		clk := clock.NewManual(0)
		p := core.NewThreadProfile(tid, clk)
		p.Enter(par)
		p.Enter(bar)
		for _, d := range taskTimes {
			p.TaskBegin(task)
			clk.Advance(d)
			p.TaskEnd()
		}
		clk.Advance(5) // waiting
		p.Exit(bar)
		p.Exit(par)
		p.Finish()
		return p
	}
	return []*core.ThreadProfile{
		mk(0, []int64{10, 20}),
		mk(1, []int64{30}),
	}, reg
}

func TestAggregateMergesAcrossThreads(t *testing.T) {
	locs, _ := buildTwoThreadProfiles(t)
	rep := Aggregate(locs)
	if rep.NumThreads != 2 {
		t.Fatalf("NumThreads = %d", rep.NumThreads)
	}
	par := rep.Main.Find("par")
	if par == nil {
		t.Fatal("no par node")
	}
	bar := par.Find("bar")
	if bar == nil {
		t.Fatal("no bar node")
	}
	// Thread 0: 10+20+5=35 in barrier; thread 1: 30+5=35.
	if bar.Dur.Sum != 70 {
		t.Errorf("barrier sum = %d, want 70", bar.Dur.Sum)
	}
	if bar.PerThreadDur[0].Sum != 35 || bar.PerThreadDur[1].Sum != 35 {
		t.Errorf("per-thread barrier sums wrong: %+v", bar.PerThreadDur)
	}
	stub := bar.Find("task work")
	if stub == nil || stub.Kind != core.KindStub {
		t.Fatal("no stub under barrier")
	}
	if stub.Dur.Sum != 60 || stub.Visits != 3 {
		t.Errorf("stub: sum=%d visits=%d, want 60/3", stub.Dur.Sum, stub.Visits)
	}
	// Waiting = exclusive barrier time: 5 per thread.
	if bar.ExclusiveSum() != 10 {
		t.Errorf("barrier excl = %d, want 10", bar.ExclusiveSum())
	}
	if bar.ExclusiveSumThread(0) != 5 {
		t.Errorf("thread0 barrier excl = %d, want 5", bar.ExclusiveSumThread(0))
	}

	if len(rep.Tasks) != 1 {
		t.Fatalf("task trees = %d", len(rep.Tasks))
	}
	tree := rep.Tasks[0]
	if tree.Dur.Count != 3 || tree.Dur.Sum != 60 || tree.Dur.Min != 10 || tree.Dur.Max != 30 {
		t.Errorf("task tree stats wrong: %+v", tree.Dur)
	}
}

func TestAggregatePanicsOnUnfinished(t *testing.T) {
	clk := clock.NewManual(0)
	p := core.NewThreadProfile(0, clk)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unfinished profile")
		}
	}()
	Aggregate([]*core.ThreadProfile{p})
}

func TestFindPathAndPath(t *testing.T) {
	locs, _ := buildTwoThreadProfiles(t)
	rep := Aggregate(locs)
	stub := rep.Main.FindPath("par", "bar", "task work")
	if stub == nil {
		t.Fatal("FindPath failed")
	}
	path := stub.Path()
	want := []string{"PROGRAM", "par", "bar", "task work"}
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	if rep.Main.FindPath("par", "nothing") != nil {
		t.Error("FindPath found a ghost")
	}
}

func TestSumHelpers(t *testing.T) {
	locs, _ := buildTwoThreadProfiles(t)
	rep := Aggregate(locs)
	if got := SumExclusiveByType(rep.Main, region.ImplicitBarrier); got != 10 {
		t.Errorf("SumExclusiveByType(barrier) = %d, want 10", got)
	}
	if got := SumInclusiveByType(rep.Main, region.ImplicitBarrier); got != 70 {
		t.Errorf("SumInclusiveByType(barrier) = %d, want 70", got)
	}
	if got := SumStubTime(rep.Main); got != 60 {
		t.Errorf("SumStubTime = %d, want 60", got)
	}
}

func TestTaskTreeLookup(t *testing.T) {
	locs, _ := buildTwoThreadProfiles(t)
	rep := Aggregate(locs)
	if rep.TaskTree("work") == nil {
		t.Error("TaskTree(work) nil")
	}
	if rep.TaskTree("none") != nil {
		t.Error("TaskTree(none) should be nil")
	}
}

func TestRenderOutput(t *testing.T) {
	locs, _ := buildTwoThreadProfiles(t)
	rep := Aggregate(locs)
	var buf bytes.Buffer
	if err := Render(&buf, rep, RenderOptions{PerThread: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"MAIN TREE", "TASK TREES", "task work [stub]",
		"[thread 0]", "[thread 1]", "max concurrently active",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q", want)
		}
	}
}

func TestRenderMinSumFilters(t *testing.T) {
	locs, _ := buildTwoThreadProfiles(t)
	rep := Aggregate(locs)
	var buf bytes.Buffer
	if err := Render(&buf, rep, RenderOptions{MinSumNs: 1 << 40}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "task work [stub]") {
		t.Error("MinSumNs did not prune small nodes")
	}
}

func TestCSVOutput(t *testing.T) {
	locs, _ := buildTwoThreadProfiles(t)
	rep := Aggregate(locs)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, rep); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 5 {
		t.Fatalf("CSV too short: %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "tree,path,kind,type,visits") {
		t.Errorf("CSV header = %q", lines[0])
	}
	found := false
	for _, l := range lines {
		if strings.Contains(l, "PROGRAM/par/bar/task work") && strings.Contains(l, "stub") {
			found = true
		}
	}
	if !found {
		t.Error("CSV missing stub row with full path")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	locs, _ := buildTwoThreadProfiles(t)
	rep := Aggregate(locs)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf, region.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if got.NumThreads != rep.NumThreads || got.MaxConcurrent != rep.MaxConcurrent {
		t.Errorf("round trip lost metadata")
	}
	// Compare tree structure and metrics recursively.
	var cmp func(a, b *Node) bool
	cmp = func(a, b *Node) bool {
		if a.Kind != b.Kind || a.Visits != b.Visits || a.Dur != b.Dur ||
			a.Name() != b.Name() || len(a.Children) != len(b.Children) {
			return false
		}
		for i := range a.Children {
			if !cmp(a.Children[i], b.Children[i]) {
				return false
			}
		}
		return true
	}
	if !cmp(rep.Main, got.Main) {
		t.Error("main tree changed in round trip")
	}
	if len(got.Tasks) != len(rep.Tasks) || !cmp(rep.Tasks[0], got.Tasks[0]) {
		t.Error("task trees changed in round trip")
	}
	// Per-thread data must survive.
	bar := got.Main.FindPath("par", "bar")
	if bar == nil || bar.PerThreadDur[1].Sum != 35 {
		t.Error("per-thread data lost in round trip")
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{not json"), region.NewRegistry()); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadJSON(strings.NewReader("{}"), region.NewRegistry()); err == nil {
		t.Error("empty report accepted")
	}
}

func TestParamChildrenSorted(t *testing.T) {
	reg := region.NewRegistry()
	task := reg.Register("t", "x.go", 1, region.Task)
	bar := reg.Register("b", "x.go", 2, region.ImplicitBarrier)
	clk := clock.NewManual(0)
	p := core.NewThreadProfile(0, clk)
	p.Enter(bar)
	for _, d := range []int64{5, 3, 9, 3} {
		p.TaskBegin(task)
		p.ParameterInt("depth", d)
		clk.Advance(1)
		p.TaskEnd()
	}
	p.Exit(bar)
	p.Finish()
	rep := Aggregate([]*core.ThreadProfile{p})
	ps := ParamChildren(rep.Tasks[0], "depth")
	if len(ps) != 3 {
		t.Fatalf("param children = %d, want 3", len(ps))
	}
	if ps[0].ParamValue != 3 || ps[1].ParamValue != 5 || ps[2].ParamValue != 9 {
		t.Errorf("not sorted: %d %d %d", ps[0].ParamValue, ps[1].ParamValue, ps[2].ParamValue)
	}
	if ps[0].Dur.Count != 2 {
		t.Errorf("depth=3 count = %d, want 2", ps[0].Dur.Count)
	}
}
