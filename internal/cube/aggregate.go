// Package cube aggregates per-thread profiles into a report and renders
// it — the role the CUBE profile format and browser play for Score-P
// (paper Fig. 5). It computes the derived metrics the paper's analyses
// need: exclusive times (inclusive minus children), per-thread
// distributions, per-construct task statistics, and the maximum number of
// concurrently active task instances.
package cube

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/region"
	"repro/internal/stats"
)

// Node is an aggregated call-tree node: metrics are summed over all
// threads, with the per-thread breakdown retained (CUBE's system
// dimension).
type Node struct {
	Kind       core.NodeKind
	Region     *region.Region
	ParamName  string
	ParamValue int64
	ParamStr   string

	Visits int64
	Dur    stats.Dur

	PerThreadDur    map[int]stats.Dur
	PerThreadVisits map[int]int64

	Parent   *Node
	Children []*Node
}

// Name renders the node's display name.
func (n *Node) Name() string {
	switch n.Kind {
	case core.KindParameter:
		if n.ParamStr != "" {
			return fmt.Sprintf("%s=%s", n.ParamName, n.ParamStr)
		}
		return fmt.Sprintf("%s=%d", n.ParamName, n.ParamValue)
	case core.KindStub:
		return "task " + n.Region.Name
	default:
		if n.Region == nil {
			return "PROGRAM"
		}
		return n.Region.Name
	}
}

// ExclusiveSum returns the time spent exclusively in this node across all
// threads: inclusive sum minus the children's inclusive sums.
func (n *Node) ExclusiveSum() int64 {
	excl := n.Dur.Sum
	for _, c := range n.Children {
		excl -= c.Dur.Sum
	}
	return excl
}

// ExclusiveSumThread returns the exclusive time of one thread.
func (n *Node) ExclusiveSumThread(tid int) int64 {
	excl := n.PerThreadDur[tid].Sum
	for _, c := range n.Children {
		excl -= c.PerThreadDur[tid].Sum
	}
	return excl
}

// Find returns the first direct child whose Name matches, or nil.
func (n *Node) Find(name string) *Node {
	for _, c := range n.Children {
		if c.Name() == name {
			return c
		}
	}
	return nil
}

// FindPath descends through children by display name.
func (n *Node) FindPath(names ...string) *Node {
	cur := n
	for _, nm := range names {
		cur = cur.Find(nm)
		if cur == nil {
			return nil
		}
	}
	return cur
}

// Walk visits the subtree in depth-first pre-order.
func (n *Node) Walk(fn func(n *Node, depth int)) { n.walk(fn, 0) }

func (n *Node) walk(fn func(*Node, int), depth int) {
	fn(n, depth)
	for _, c := range n.Children {
		c.walk(fn, depth+1)
	}
}

// Path returns the display names from the tree root to n.
func (n *Node) Path() []string {
	var rev []string
	for c := n; c != nil; c = c.Parent {
		rev = append(rev, c.Name())
	}
	out := make([]string, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// Report is the aggregated profile of one measured run.
type Report struct {
	// Main is the merged implicit-task call tree: a synthetic PROGRAM
	// root whose subtree merges all threads' implicit trees by call path.
	Main *Node
	// Tasks holds the aggregate task trees, one per task construct,
	// "presented above the main call tree" in the paper's visualization.
	Tasks []*Node

	// NumThreads is the number of locations aggregated.
	NumThreads int
	// MaxConcurrentPerThread maps thread ID to the maximum number of
	// concurrently active task-instance trees on it (Table II input).
	MaxConcurrentPerThread map[int]int
	// MaxConcurrent is the maximum over all threads (Table II value).
	MaxConcurrent int
	// SwitchesPerThread maps thread ID to task-switch transition counts.
	SwitchesPerThread map[int]int64
}

// Aggregate merges per-thread profiles into a report. The profiles must
// be finished.
func Aggregate(locs []*core.ThreadProfile) *Report {
	rep := &Report{
		Main:                   &Node{Kind: core.KindRegion},
		NumThreads:             len(locs),
		MaxConcurrentPerThread: make(map[int]int, len(locs)),
		SwitchesPerThread:      make(map[int]int64, len(locs)),
	}
	taskIdx := make(map[*region.Region]*Node)
	for _, loc := range locs {
		if !loc.Finished() {
			panic("cube: Aggregate on unfinished profile")
		}
		tid := loc.ThreadID
		rep.MaxConcurrentPerThread[tid] = loc.MaxActiveInstances()
		if loc.MaxActiveInstances() > rep.MaxConcurrent {
			rep.MaxConcurrent = loc.MaxActiveInstances()
		}
		rep.SwitchesPerThread[tid] = loc.Switches()

		// The thread root node itself becomes the PROGRAM root's metrics.
		mergeCore(rep.Main, loc.Root(), tid)

		for _, tr := range loc.TaskRoots() {
			agg, ok := taskIdx[tr.Region]
			if !ok {
				agg = &Node{Kind: core.KindRegion, Region: tr.Region}
				taskIdx[tr.Region] = agg
				rep.Tasks = append(rep.Tasks, agg)
			}
			mergeCore(agg, tr, tid)
		}
	}
	sort.SliceStable(rep.Tasks, func(i, j int) bool {
		return rep.Tasks[i].Region.ID < rep.Tasks[j].Region.ID
	})
	return rep
}

// mergeCore folds one thread's core node (and subtree) into an aggregate
// node with the same key.
func mergeCore(dst *Node, src *core.Node, tid int) {
	dst.Visits += src.Visits
	dst.Dur.Merge(src.Dur)
	if dst.PerThreadDur == nil {
		dst.PerThreadDur = make(map[int]stats.Dur)
		dst.PerThreadVisits = make(map[int]int64)
	}
	d := dst.PerThreadDur[tid]
	d.Merge(src.Dur)
	dst.PerThreadDur[tid] = d
	dst.PerThreadVisits[tid] += src.Visits

	for _, sc := range src.Children {
		dc := findOrAddChild(dst, sc)
		mergeCore(dc, sc, tid)
	}
}

func findOrAddChild(n *Node, src *core.Node) *Node {
	for _, c := range n.Children {
		if c.Kind == src.Kind {
			switch src.Kind {
			case core.KindParameter:
				if c.ParamName == src.ParamName && c.ParamValue == src.ParamValue && c.ParamStr == src.ParamStr {
					return c
				}
			default:
				if c.Region == src.Region {
					return c
				}
			}
		}
	}
	c := &Node{
		Kind:       src.Kind,
		Region:     src.Region,
		ParamName:  src.ParamName,
		ParamValue: src.ParamValue,
		ParamStr:   src.ParamStr,
		Parent:     n,
	}
	n.Children = append(n.Children, c)
	return c
}

// TaskTree returns the aggregate task tree for the construct with the
// given region name, or nil.
func (r *Report) TaskTree(name string) *Node {
	for _, t := range r.Tasks {
		if t.Region.Name == name {
			return t
		}
	}
	return nil
}

// SumExclusiveByType walks a tree and sums the exclusive time of all
// nodes whose region has the given type. Used for Table III (taskwait,
// create, barrier shares).
func SumExclusiveByType(root *Node, typ region.Type) int64 {
	var sum int64
	root.Walk(func(n *Node, _ int) {
		if n.Kind == core.KindRegion && n.Region != nil && n.Region.Type == typ {
			sum += n.ExclusiveSum()
		}
	})
	return sum
}

// SumInclusiveByType sums Dur.Sum over nodes of the given region type.
func SumInclusiveByType(root *Node, typ region.Type) int64 {
	var sum int64
	root.Walk(func(n *Node, _ int) {
		if n.Kind == core.KindRegion && n.Region != nil && n.Region.Type == typ {
			sum += n.Dur.Sum
		}
	})
	return sum
}

// SumStubTime sums the inclusive time of all stub nodes in a tree: the
// total task-execution time inside scheduling points (Fig. 5's reading:
// "113s of task execution happened inside the barrier").
func SumStubTime(root *Node) int64 {
	var sum int64
	root.Walk(func(n *Node, _ int) {
		if n.Kind == core.KindStub {
			sum += n.Dur.Sum
		}
	})
	return sum
}

// ParamChildren returns the parameter children of a node sorted by value
// (Table IV rows: one per depth level).
func ParamChildren(n *Node, name string) []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Kind == core.KindParameter && c.ParamName == name {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ParamValue < out[j].ParamValue })
	return out
}
