// Package clock provides the time sources used by the measurement system.
//
// The profiling engine (internal/core) is written against the Clock
// interface so that unit tests can drive it with a deterministic manual
// clock and verify exact inclusive/exclusive times, while production
// measurement uses the monotonic system clock.
package clock

import (
	"sync"
	"sync/atomic"
	"time"
)

// Clock yields monotonically non-decreasing timestamps in nanoseconds.
// The epoch is arbitrary; only differences are meaningful.
type Clock interface {
	// Now returns the current timestamp in nanoseconds.
	Now() int64
}

// System is the monotonic wall clock. The zero value is ready to use.
type System struct {
	once sync.Once
	base time.Time
}

// NewSystem returns a system clock anchored at the moment of the call.
func NewSystem() *System {
	s := &System{}
	s.anchor()
	return s
}

// anchor establishes the epoch exactly once. An earlier version set the
// base with a plain store behind an atomic.Bool, which raced when two
// goroutines first used a zero-value clock concurrently: one could read
// time.Since(base) while the other was still writing base. sync.Once
// provides the needed happens-before edge, and its fast path is a
// single atomic load — in steady state Now costs the same as before.
func (s *System) anchor() {
	s.once.Do(func() { s.base = time.Now() })
}

// Now returns nanoseconds elapsed since the clock was created (or first
// used, for a zero-value clock). It uses Go's monotonic reading and is
// safe for concurrent use.
func (s *System) Now() int64 {
	s.anchor()
	return int64(time.Since(s.base))
}

// Manual is a deterministic clock for tests. Timestamps only change when
// Advance or Set is called. It is safe for concurrent use.
type Manual struct {
	now atomic.Int64
}

// NewManual returns a manual clock starting at start nanoseconds.
func NewManual(start int64) *Manual {
	m := &Manual{}
	m.now.Store(start)
	return m
}

// Now returns the current manual time.
func (m *Manual) Now() int64 { return m.now.Load() }

// Advance moves the clock forward by d nanoseconds and returns the new time.
// It panics if d is negative: the measurement system assumes monotonicity.
func (m *Manual) Advance(d int64) int64 {
	if d < 0 {
		panic("clock: Manual.Advance with negative delta")
	}
	return m.now.Add(d)
}

// Set jumps the clock to t. It panics if t would move time backwards.
func (m *Manual) Set(t int64) {
	for {
		cur := m.now.Load()
		if t < cur {
			panic("clock: Manual.Set moving time backwards")
		}
		if m.now.CompareAndSwap(cur, t) {
			return
		}
	}
}

// Func adapts a plain function to the Clock interface.
type Func func() int64

// Now implements Clock.
func (f Func) Now() int64 { return f() }
