package clock

import (
	"sync"
	"testing"
	"time"
)

func TestSystemMonotonic(t *testing.T) {
	c := NewSystem()
	prev := c.Now()
	for i := 0; i < 1000; i++ {
		now := c.Now()
		if now < prev {
			t.Fatalf("clock went backwards: %d -> %d", prev, now)
		}
		prev = now
	}
}

func TestSystemAdvances(t *testing.T) {
	c := NewSystem()
	start := c.Now()
	time.Sleep(2 * time.Millisecond)
	if d := c.Now() - start; d < int64(time.Millisecond) {
		t.Errorf("clock advanced only %dns over a 2ms sleep", d)
	}
}

func TestSystemZeroValue(t *testing.T) {
	var c System
	first := c.Now()
	if first < 0 {
		t.Errorf("zero-value clock returned negative time %d", first)
	}
	if second := c.Now(); second < first {
		t.Errorf("zero-value clock not monotonic: %d then %d", first, second)
	}
}

func TestManualBasics(t *testing.T) {
	m := NewManual(100)
	if m.Now() != 100 {
		t.Errorf("start = %d, want 100", m.Now())
	}
	if got := m.Advance(50); got != 150 {
		t.Errorf("Advance returned %d, want 150", got)
	}
	m.Set(200)
	if m.Now() != 200 {
		t.Errorf("after Set: %d, want 200", m.Now())
	}
}

func TestManualRejectsBackwards(t *testing.T) {
	m := NewManual(10)
	for _, fn := range []func(){
		func() { m.Advance(-1) },
		func() { m.Set(5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on backwards time")
				}
			}()
			fn()
		}()
	}
}

func TestManualConcurrentAdvance(t *testing.T) {
	m := NewManual(0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.Advance(1)
			}
		}()
	}
	wg.Wait()
	if m.Now() != 8000 {
		t.Errorf("concurrent advances lost updates: %d, want 8000", m.Now())
	}
}

func TestFuncAdapter(t *testing.T) {
	n := int64(41)
	var c Clock = Func(func() int64 { n++; return n })
	if c.Now() != 42 {
		t.Error("Func adapter broken")
	}
}
