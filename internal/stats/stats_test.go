package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestDurBasics(t *testing.T) {
	var d Dur
	if !d.Empty() {
		t.Error("zero value not empty")
	}
	d.Add(5)
	d.Add(1)
	d.Add(9)
	if d.Count != 3 || d.Sum != 15 || d.Min != 1 || d.Max != 9 {
		t.Errorf("got %+v", d)
	}
	if d.Mean() != 5 {
		t.Errorf("mean = %f, want 5", d.Mean())
	}
}

func TestDurMergeEmptyIdentity(t *testing.T) {
	var a Dur
	a.Add(3)
	a.Add(7)
	before := a
	a.Merge(Dur{})
	if a != before {
		t.Error("merging empty changed the aggregate")
	}
	var b Dur
	b.Merge(before)
	if b != before {
		t.Error("merging into empty did not copy")
	}
}

// TestDurMergeEquivalentToAdds: property — merging two aggregates equals
// aggregating the concatenated samples.
func TestDurMergeEquivalentToAdds(t *testing.T) {
	f := func(xs, ys []int16) bool {
		var a, b, all Dur
		for _, x := range xs {
			a.Add(int64(x))
			all.Add(int64(x))
		}
		for _, y := range ys {
			b.Add(int64(y))
			all.Add(int64(y))
		}
		a.Merge(b)
		return a == all
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestDurMergeAssociative: property — (a+b)+c == a+(b+c).
func TestDurMergeAssociative(t *testing.T) {
	mk := func(xs []int16) Dur {
		var d Dur
		for _, x := range xs {
			d.Add(int64(x))
		}
		return d
	}
	f := func(xs, ys, zs []int16) bool {
		l := mk(xs)
		l.Merge(mk(ys))
		l.Merge(mk(zs))
		rInner := mk(ys)
		rInner.Merge(mk(zs))
		r := mk(xs)
		r.Merge(rInner)
		return l == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestDurInvariants: property — min <= mean <= max, sum consistent.
func TestDurInvariants(t *testing.T) {
	f := func(xs []int16) bool {
		if len(xs) == 0 {
			return true
		}
		var d Dur
		var sum int64
		for _, x := range xs {
			d.Add(int64(x))
			sum += int64(x)
		}
		m := d.Mean()
		return d.Sum == sum && float64(d.Min) <= m && m <= float64(d.Max) &&
			d.Count == int64(len(xs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFormatNs(t *testing.T) {
	cases := []struct {
		ns   int64
		want string
	}{
		{0, "0ns"},
		{999, "999ns"},
		{1500, "1.5µs"},
		{2_000_000, "2ms"},
		{3_500_000_000, "3.5s"},
		{-1500, "-1.5µs"},
	}
	for _, c := range cases {
		if got := FormatNs(c.ns); got != c.want {
			t.Errorf("FormatNs(%d) = %q, want %q", c.ns, got, c.want)
		}
	}
}

func TestDurString(t *testing.T) {
	var d Dur
	if d.String() != "n=0" {
		t.Errorf("empty: %q", d.String())
	}
	d.Add(1000)
	if !strings.Contains(d.String(), "n=1") {
		t.Errorf("got %q", d.String())
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Errorf("n = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Errorf("mean = %f, want 5", w.Mean())
	}
	// Sample variance of this classic dataset is 32/7.
	if math.Abs(w.Variance()-32.0/7.0) > 1e-12 {
		t.Errorf("variance = %f, want %f", w.Variance(), 32.0/7.0)
	}
	if math.Abs(w.Stddev()-math.Sqrt(32.0/7.0)) > 1e-12 {
		t.Errorf("stddev = %f", w.Stddev())
	}
}

func TestWelfordFewSamples(t *testing.T) {
	var w Welford
	if w.Variance() != 0 || w.Mean() != 0 {
		t.Error("empty welford nonzero")
	}
	w.Add(3)
	if w.Variance() != 0 {
		t.Error("single-sample variance nonzero")
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{3, 1}, 2},
		{[]float64{9, 1, 5}, 5},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, c := range cases {
		if got := Median(c.in); got != c.want {
			t.Errorf("Median(%v) = %f, want %f", c.in, got, c.want)
		}
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("Median mutated its input")
	}
}

// TestMedianBounds: property — median lies within [min, max].
func TestMedianBounds(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return Median(xs) == 0
		}
		for _, x := range xs {
			if math.IsNaN(x) {
				return true // NaN ordering undefined; skip
			}
		}
		m := Median(xs)
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		return m >= lo && m <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
