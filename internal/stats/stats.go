// Package stats implements the per-node metric statistics the paper's
// profile stores: for every call-tree node the sum, minimum, maximum and
// number of samples of a metric (Section IV-A: "together with information
// required for statistical analysis, i.e. the sum, the minimum, the
// maximum and the number of samples").
package stats

import (
	"fmt"
	"math"
)

// Dur aggregates int64 nanosecond duration samples.
// The zero value is an empty aggregate ready for use.
type Dur struct {
	Count int64
	Sum   int64
	Min   int64
	Max   int64
}

// Add records one sample.
func (d *Dur) Add(v int64) {
	if d.Count == 0 {
		d.Min, d.Max = v, v
	} else {
		if v < d.Min {
			d.Min = v
		}
		if v > d.Max {
			d.Max = v
		}
	}
	d.Count++
	d.Sum += v
}

// Merge folds other into d. Merging is associative and commutative with
// the empty aggregate as identity; the property test relies on this.
func (d *Dur) Merge(other Dur) {
	if other.Count == 0 {
		return
	}
	if d.Count == 0 {
		*d = other
		return
	}
	if other.Min < d.Min {
		d.Min = other.Min
	}
	if other.Max > d.Max {
		d.Max = other.Max
	}
	d.Count += other.Count
	d.Sum += other.Sum
}

// Mean returns the arithmetic mean of the samples, or 0 if empty.
func (d Dur) Mean() float64 {
	if d.Count == 0 {
		return 0
	}
	return float64(d.Sum) / float64(d.Count)
}

// Empty reports whether no samples were recorded.
func (d Dur) Empty() bool { return d.Count == 0 }

// String renders the aggregate compactly for reports and debugging.
func (d Dur) String() string {
	if d.Count == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d sum=%s min=%s max=%s mean=%s",
		d.Count, FormatNs(d.Sum), FormatNs(d.Min), FormatNs(d.Max), FormatNs(int64(d.Mean())))
}

// FormatNs renders nanoseconds using the most readable unit, mirroring
// the units the paper's tables use (µs for task times, s for totals).
func FormatNs(ns int64) string {
	abs := ns
	if abs < 0 {
		abs = -abs
	}
	switch {
	case abs >= 1e9:
		return fmt.Sprintf("%.3gs", float64(ns)/1e9)
	case abs >= 1e6:
		return fmt.Sprintf("%.3gms", float64(ns)/1e6)
	case abs >= 1e3:
		return fmt.Sprintf("%.3gµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

// Welford accumulates running mean and variance for float64 samples.
// The experiment harness uses it to report run-to-run spread, which the
// paper needed for the floorplan class-A/class-B discussion (Section V-A).
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add records one sample.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of samples.
func (w *Welford) N() int64 { return w.n }

// Mean returns the running mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the sample variance (0 for fewer than two samples).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Stddev returns the sample standard deviation.
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Variance()) }

// Median returns the median of xs, or 0 for an empty slice. xs is not
// modified. Medians are used by the overhead experiments because the
// paper's overhead numbers are sensitive to outlier runs.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	cp := make([]float64, n)
	copy(cp, xs)
	// Insertion sort: experiment repetition counts are tiny.
	for i := 1; i < n; i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	if n%2 == 1 {
		return cp[n/2]
	}
	// Halve before adding so extreme values cannot overflow to +-Inf.
	return cp[n/2-1]/2 + cp[n/2]/2
}
