package scorep

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/bottleneck"
	"repro/internal/cube"
	"repro/internal/otf2"
	"repro/internal/region"
	"repro/internal/trace"
)

// Experiment archive layout — the analog of Score-P's scorep-<name>/
// measurement directory: one directory holding the profile, the trace
// and the metadata that ties them to the configuration that produced
// them.
const (
	// ExperimentMetaVersion is the meta.json format version.
	ExperimentMetaVersion = 1

	experimentProfileFile = "profile.json"
	experimentTraceFile   = "trace.otf2"
	experimentMetaFile    = "meta.json"

	// experimentShardPattern matches the per-process trace shards of a
	// fleet experiment (one archive per location group, named by the
	// producing stream: trace-<id>.otf2).
	experimentShardPattern = "trace-*.otf2"
)

// profileFormatName names the profile serialization (cube JSON as
// written by WriteReportJSON).
const profileFormatName = "cube-json-v1"

// ExperimentConfig is the measurement configuration recorded in (and
// loaded from) an experiment's meta.json.
type ExperimentConfig struct {
	Profiling      bool     `json:"profiling"`
	Tracing        bool     `json:"tracing"`
	StreamingTrace bool     `json:"streamingTrace,omitempty"`
	FilterPatterns []string `json:"filterPatterns,omitempty"`
	Scheduler      string   `json:"scheduler"`
	// TraceCompression names the archived trace's event-chunk
	// compression ("none", "flate"). Absent in experiments written
	// before compression existed, which is equivalent to "none".
	TraceCompression string `json:"traceCompression,omitempty"`
	// RemoteSink is the measurement-service address the run streamed
	// its trace to (WithRemoteTrace / SCOREP_TRACE_SINK), "" for local
	// runs. When set, the trace lives in the daemon's fleet experiment,
	// not in this directory.
	RemoteSink string `json:"remoteSink,omitempty"`
}

// TraceShard describes one per-process trace archive of a multi-process
// (fleet) experiment directory, as recorded in meta.json by the daemon
// or discovered by globbing trace-*.otf2.
type TraceShard struct {
	// File is the shard's file name within the experiment directory.
	File string `json:"file"`
	// Stream is the producing process's stream id.
	Stream string `json:"stream,omitempty"`
	// Bytes is the shard size as ingested.
	Bytes int64 `json:"bytes,omitempty"`
	// DroppedEvents counts event batches the producer's backpressure
	// policy discarded before encoding (holes in the recording, not
	// archive damage).
	DroppedEvents int64 `json:"droppedEvents,omitempty"`
	// GapBytes counts archive bytes lost between this shard's durable
	// prefix and the producer's resume point when the producer declared
	// an unresumable gap after a daemon crash. The shard was sealed at
	// the prefix; the missing bytes live in the producer's local
	// fallback archive when one was configured.
	GapBytes int64 `json:"gapBytes,omitempty"`
	// Resumes counts mid-stream reconnections that resumed this shard
	// after a severed connection or daemon restart.
	Resumes int64 `json:"resumes,omitempty"`
	// Complete reports a cleanly sealed shard. False marks the intact
	// prefix of a severed stream — still readable, salvaged with a
	// truncation warning.
	Complete bool `json:"complete"`
}

// RemoteFallbackInfo records that a remote-tracing session lost its
// daemon for good and spilled the trace to a local fallback archive
// (see WithRemoteTraceFallback), as recorded in meta.json.
type RemoteFallbackInfo struct {
	// File is the fallback archive path as configured.
	File string `json:"file"`
	// StartOffset is the archive byte offset of the file's first byte:
	// 0 means a complete standalone archive, a larger offset means the
	// file continues the daemon shard's durable prefix.
	StartOffset int64 `json:"startOffset"`
	// Reason describes the failure that caused the degradation.
	Reason string `json:"reason,omitempty"`
}

// ExperimentMeta is the contents of an experiment's meta.json: the
// configuration, environment and run statistics that make the archived
// profile and trace interpretable offline.
type ExperimentMeta struct {
	// FormatVersion is ExperimentMetaVersion at write time.
	FormatVersion int `json:"formatVersion"`
	// CreatedUnixNs is the wall-clock time the experiment was saved.
	CreatedUnixNs int64 `json:"createdUnixNs"`
	// WallTimeNs is the measured wall time from NewSession to End.
	WallTimeNs int64 `json:"wallTimeNs"`

	// GOMAXPROCS, NumCPU and GoVersion describe the measured process.
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"numCPU"`
	GoVersion  string `json:"goVersion"`

	// Config is the session configuration that produced the run.
	Config ExperimentConfig `json:"config"`

	// Threads and TasksCreated summarize the run's last parallel region.
	Threads      int   `json:"threads"`
	TasksCreated int64 `json:"tasksCreated"`

	// HasProfile/HasTrace state which artifacts the directory holds;
	// the format fields record their serialization versions.
	HasProfile    bool   `json:"hasProfile"`
	HasTrace      bool   `json:"hasTrace"`
	ProfileFormat string `json:"profileFormat,omitempty"`
	TraceFormat   string `json:"traceFormat,omitempty"`

	// TraceShards lists the per-process trace archives of a fleet
	// experiment sealed by scorep-daemon. Optional: readers that
	// predate it ignore the field, and Experiment falls back to
	// globbing trace-*.otf2 when it is absent.
	TraceShards []TraceShard `json:"traceShards,omitempty"`

	// FlightRecorder records a flight-recorder run's eviction accounting:
	// the archived trace is the retained window, and DroppedEvents/
	// DroppedChunks count what the rings evicted before it. Nil for
	// full-trace runs. For triggered dumps it also names the trigger and
	// marks partial (salvage-prefix) archives.
	FlightRecorder *FlightRecorderInfo `json:"flightRecorder,omitempty"`

	// RemoteFallback, RemoteResumes and RemoteGapBytes record the fate
	// of a remote-tracing session's stream: the local archive it
	// spilled to when the daemon was lost for good (nil otherwise), how
	// often it reconnected and resumed mid-stream, and how many archive
	// bytes an unresumable gap lost remotely.
	RemoteFallback *RemoteFallbackInfo `json:"remoteFallback,omitempty"`
	RemoteResumes  int64               `json:"remoteResumes,omitempty"`
	RemoteGapBytes int64               `json:"remoteGapBytes,omitempty"`
}

// SaveExperiment writes the run's experiment archive to dir (created if
// needed): profile.json (when the session profiled), trace.otf2 (when
// it traced in memory) and meta.json. meta.json is written last, so a
// directory with readable metadata is a completely saved experiment.
// Load it back with OpenExperiment.
func (r *Results) SaveExperiment(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("experiment: %w", err)
	}
	meta := ExperimentMeta{
		FormatVersion: ExperimentMetaVersion,
		CreatedUnixNs: time.Now().UnixNano(),
		WallTimeNs:    int64(r.wall),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		GoVersion:     runtime.Version(),
		Config: ExperimentConfig{
			Profiling:      r.cfg.profiling,
			Tracing:        r.cfg.tracing,
			StreamingTrace: r.cfg.streamingSink != nil,
			FilterPatterns: r.cfg.filters,
			Scheduler:      r.cfg.sched.String(),
			RemoteSink:     r.cfg.remoteAddr,
		},
		Threads:        r.stats.Threads,
		TasksCreated:   r.stats.TasksCreated,
		RemoteFallback: r.remoteFallback,
		RemoteResumes:  r.remoteResumes,
		RemoteGapBytes: r.remoteGapBytes,
	}
	if rep := r.Report(); rep != nil {
		meta.HasProfile = true
		meta.ProfileFormat = profileFormatName
		if err := writeExperimentFile(dir, experimentProfileFile, func(f *os.File) error {
			return cube.WriteJSON(f, rep)
		}); err != nil {
			return err
		}
	} else if err := removeExperimentFile(dir, experimentProfileFile); err != nil {
		return err
	}
	if tr := r.Trace(); tr != nil {
		meta.HasTrace = true
		meta.TraceFormat = fmt.Sprintf("spotf2-v%d", otf2.FormatVersion)
		meta.Config.TraceCompression = r.cfg.traceComp.String()
		if err := writeExperimentFile(dir, experimentTraceFile, func(f *os.File) error {
			// A flight-recorder run archives its retained window with
			// the eviction-accounting chunk up front; full traces are
			// written plain.
			if r.flightStats != nil {
				meta.FlightRecorder = flightRecorderInfo(*r.flightStats, "end", nil)
				return otf2.WriteFlightDump(f, tr, otf2.FlightInfoFromStats(*r.flightStats), otf2.WithCompression(r.cfg.traceComp))
			}
			return otf2.Write(f, tr, otf2.WithCompression(r.cfg.traceComp))
		}); err != nil {
			return err
		}
	} else if err := removeExperimentFile(dir, experimentTraceFile); err != nil {
		return err
	}
	return writeExperimentFile(dir, experimentMetaFile, func(f *os.File) error {
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		return enc.Encode(meta)
	})
}

// SaveFleetExperiment writes the meta.json of a multi-process (fleet)
// experiment directory: the shard files themselves were already written
// by the daemon's ingest, so sealing the experiment is exactly one
// metadata write — and, as with SaveExperiment, the metadata comes
// last, marking the directory complete. wall is the daemon's serving
// duration. The directory opens with OpenExperiment; the shards are
// enumerated by Experiment.TraceShards.
func SaveFleetExperiment(dir string, wall time.Duration, shards []TraceShard) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("experiment: %w", err)
	}
	meta := ExperimentMeta{
		FormatVersion: ExperimentMetaVersion,
		CreatedUnixNs: time.Now().UnixNano(),
		WallTimeNs:    int64(wall),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		GoVersion:     runtime.Version(),
		Config: ExperimentConfig{
			// The shards were produced by (possibly heterogeneous)
			// remote sessions; the daemon records only what it knows:
			// streamed traces, no fleet-wide profile.
			Tracing:        true,
			StreamingTrace: true,
		},
		TraceFormat: fmt.Sprintf("spotf2-v%d", otf2.FormatVersion),
		TraceShards: shards,
	}
	return writeExperimentFile(dir, experimentMetaFile, func(f *os.File) error {
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		return enc.Encode(meta)
	})
}

// removeExperimentFile deletes an artifact a re-save into an existing
// directory no longer produces, so stale files from a previous run
// cannot sit next to a meta.json that disclaims them.
func removeExperimentFile(dir, name string) error {
	if err := os.Remove(filepath.Join(dir, name)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("experiment: %w", err)
	}
	return nil
}

func writeExperimentFile(dir, name string, write func(*os.File) error) error {
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("experiment: %w", err)
	}
	werr := write(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("experiment: writing %s: %w", path, werr)
	}
	return nil
}

// Experiment is a loaded on-disk experiment archive. The metadata is
// read eagerly by OpenExperiment; the profile and trace load lazily on
// first use and are cached. An experiment whose trace.otf2 was cut off
// by a crashed run is salvaged: the intact prefix is used and the cut
// is reported through Warnings.
type Experiment struct {
	// Dir is the archive directory.
	Dir string
	// Meta is the decoded meta.json.
	Meta ExperimentMeta

	// AnalysisParallelism is the worker count used to decode and
	// analyze the archived trace (<= 0: one per processor, 1: strictly
	// sequential). Per-thread trace streams are independent, so the
	// result is identical at every setting. Set it before the first
	// Trace/TraceAnalysis call; the loaded artifacts are cached.
	AnalysisParallelism int

	mu            sync.Mutex
	report        *Report
	trace         *Trace
	traceLoaded   bool
	analysis      *TraceAnalysis
	findings      []Finding
	findingsSet   bool
	warnings      []string
	shards        []TraceShard
	shardsSet     bool
	shardAnalyses map[int]*TraceAnalysis

	bottlenecks      *BottleneckAnalysis
	shardBottlenecks map[int]*BottleneckAnalysis
}

// OpenExperiment loads the experiment archive at dir, the counterpart
// of Results.SaveExperiment. Only meta.json is read eagerly; the
// profile and trace are loaded on first access.
func OpenExperiment(dir string) (*Experiment, error) {
	f, err := os.Open(filepath.Join(dir, experimentMetaFile))
	if err != nil {
		return nil, fmt.Errorf("experiment: %w", err)
	}
	defer f.Close()
	var meta ExperimentMeta
	if err := json.NewDecoder(f).Decode(&meta); err != nil {
		return nil, fmt.Errorf("experiment: decoding %s: %w", experimentMetaFile, err)
	}
	if meta.FormatVersion > ExperimentMetaVersion {
		return nil, fmt.Errorf("experiment: %s has format version %d, this build reads <= %d",
			dir, meta.FormatVersion, ExperimentMetaVersion)
	}
	return &Experiment{Dir: dir, Meta: meta}, nil
}

// ProfilePath returns the path of the archived profile JSON (which
// exists only when Meta.HasProfile).
func (e *Experiment) ProfilePath() string { return filepath.Join(e.Dir, experimentProfileFile) }

// TracePath returns the path of the archived binary trace (which exists
// only when Meta.HasTrace).
func (e *Experiment) TracePath() string { return filepath.Join(e.Dir, experimentTraceFile) }

// Report loads the archived profile report, or returns (nil, nil) when
// the experiment holds none.
func (e *Experiment) Report() (*Report, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.reportLocked()
}

func (e *Experiment) reportLocked() (*Report, error) {
	if e.report != nil || !e.Meta.HasProfile {
		return e.report, nil
	}
	f, err := os.Open(e.ProfilePath())
	if err != nil {
		return nil, fmt.Errorf("experiment: %w", err)
	}
	defer f.Close()
	rep, err := cube.ReadJSON(f, region.NewRegistry())
	if err != nil {
		return nil, fmt.Errorf("experiment: %s: %w", e.ProfilePath(), err)
	}
	e.report = rep
	return rep, nil
}

// Trace loads the archived event trace, or returns (nil, nil) when the
// experiment holds none. A trace truncated by a crashed run yields its
// intact prefix; the cut is recorded in Warnings, not returned as an
// error.
func (e *Experiment) Trace() (*Trace, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.traceLoaded || !e.Meta.HasTrace {
		return e.trace, nil
	}
	tr, warn, err := otf2.ReadFileLenient(e.TracePath(), region.NewRegistry(), e.AnalysisParallelism)
	if err != nil {
		return nil, fmt.Errorf("experiment: %s: %w", e.TracePath(), err)
	}
	e.addWarning(warn)
	e.trace = tr
	e.traceLoaded = true
	return tr, nil
}

// TraceAnalysis derives the paper's §VII metrics from the archived
// trace, or returns (nil, nil) when the experiment holds no trace. When
// Trace already materialized the recording the analysis reuses it;
// otherwise the archive is streamed in bounded memory without loading
// the trace. Truncated traces are salvaged like in Trace.
func (e *Experiment) TraceAnalysis() (*TraceAnalysis, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.analysis != nil || !e.Meta.HasTrace {
		return e.analysis, nil
	}
	if e.traceLoaded {
		e.analysis = trace.AnalyzeParallel(e.trace, e.AnalysisParallelism)
		return e.analysis, nil
	}
	a, warn, err := otf2.AnalyzeFile(e.TracePath(), e.AnalysisParallelism)
	if err != nil {
		return nil, fmt.Errorf("experiment: %s: %w", e.TracePath(), err)
	}
	e.addWarning(warn)
	e.analysis = a
	return a, nil
}

// TraceAnalysisQuery derives the trace metrics restricted to the
// sub-trace matching q, or returns zero-value results when the
// experiment holds no trace. An archive with a footer index (format
// v2) is accessed through it — only chunks whose thread and time
// bounds can match are decoded; older or truncated archives fall back
// to a full scan with event-level filtering (salvaging the intact
// prefix with a warning, like TraceAnalysis). The analysis equals
// filtering the full trace with q and analyzing that. Results are not
// cached: each call reflects its own query.
func (e *Experiment) TraceAnalysisQuery(q TraceQuery) (*TraceAnalysis, TraceQueryStats, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.Meta.HasTrace {
		return nil, TraceQueryStats{}, nil
	}
	if e.traceLoaded {
		return trace.AnalyzeParallel(q.Filter(e.trace), e.AnalysisParallelism), TraceQueryStats{}, nil
	}
	a, st, warn, err := otf2.AnalyzeFileQuery(e.TracePath(), q, e.AnalysisParallelism)
	if err != nil {
		return nil, st, fmt.Errorf("experiment: %s: %w", e.TracePath(), err)
	}
	e.addWarning(warn)
	return a, st, nil
}

// Bottlenecks runs the bottleneck analysis (wait-state classification,
// critical path, what-if savings) over the archived trace, or returns
// (nil, nil) when the experiment holds no trace. Like TraceAnalysis it
// reuses a materialized trace, streams the archive out-of-core
// otherwise, salvages truncated traces with a warning, and caches the
// result.
func (e *Experiment) Bottlenecks() (*BottleneckAnalysis, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.bottlenecks != nil || !e.Meta.HasTrace {
		return e.bottlenecks, nil
	}
	if e.traceLoaded {
		e.bottlenecks = bottleneck.AnalyzeQuery(e.trace, TraceQuery{}, e.AnalysisParallelism)
		return e.bottlenecks, nil
	}
	a, _, warn, err := otf2.AnalyzeFileBottlenecks(e.TracePath(), TraceQuery{}, e.AnalysisParallelism)
	if err != nil {
		return nil, fmt.Errorf("experiment: %s: %w", e.TracePath(), err)
	}
	e.addWarning(warn)
	e.bottlenecks = a
	return a, nil
}

// BottlenecksQuery is Bottlenecks restricted to the sub-trace matching
// q, with the same index-driven access and fallback as
// TraceAnalysisQuery. Results are not cached: each call reflects its
// own query.
func (e *Experiment) BottlenecksQuery(q TraceQuery) (*BottleneckAnalysis, TraceQueryStats, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.Meta.HasTrace {
		return nil, TraceQueryStats{}, nil
	}
	if e.traceLoaded {
		return bottleneck.AnalyzeQuery(q.Filter(e.trace), TraceQuery{}, e.AnalysisParallelism), TraceQueryStats{}, nil
	}
	a, st, warn, err := otf2.AnalyzeFileBottlenecks(e.TracePath(), q, e.AnalysisParallelism)
	if err != nil {
		return nil, st, fmt.Errorf("experiment: %s: %w", e.TracePath(), err)
	}
	e.addWarning(warn)
	return a, st, nil
}

// TraceShards enumerates the per-process trace shards of a
// multi-process experiment: the list sealed in meta.json by
// scorep-daemon when present, otherwise whatever trace-*.otf2 files the
// directory holds (a daemon killed before sealing still leaves usable
// shards). Globbed shards report their size, their stream id derived
// from the file name, and Complete by probing for the archive's footer
// index — a sealed v2 archive carries one, a severed stream's prefix
// does not. The single-process trace.otf2 is not a shard. The result
// is cached; a single-process experiment returns an empty list.
func (e *Experiment) TraceShards() []TraceShard {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.shardsSet {
		return e.shards
	}
	e.shardsSet = true
	if len(e.Meta.TraceShards) > 0 {
		e.shards = make([]TraceShard, len(e.Meta.TraceShards))
		for i, sh := range e.Meta.TraceShards {
			// Shard files live flat in the experiment directory; a path
			// that says otherwise is reduced to its base name rather
			// than followed.
			sh.File = filepath.Base(sh.File)
			e.shards[i] = sh
		}
		return e.shards
	}
	matches, _ := filepath.Glob(filepath.Join(e.Dir, experimentShardPattern))
	sort.Strings(matches)
	for _, m := range matches {
		name := filepath.Base(m)
		sh := TraceShard{
			File:   name,
			Stream: strings.TrimSuffix(strings.TrimPrefix(name, "trace-"), ".otf2"),
		}
		if fi, err := os.Stat(m); err == nil {
			sh.Bytes = fi.Size()
		}
		sh.Complete = shardHasIndex(m)
		e.shards = append(e.shards, sh)
	}
	return e.shards
}

// shardHasIndex reports whether the archive at path carries a readable
// footer index — the mark of a cleanly sealed shard.
func shardHasIndex(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	_, err = otf2.ReadIndex(f)
	return err == nil
}

// ShardTraceAnalysis derives the trace metrics of shard i of
// TraceShards, analyzed out-of-core like TraceAnalysis and cached per
// shard. A truncated shard (severed stream) is salvaged to its intact
// prefix with a per-shard warning in Warnings, naming the shard file.
func (e *Experiment) ShardTraceAnalysis(i int) (*TraceAnalysis, error) {
	shards := e.TraceShards()
	if i < 0 || i >= len(shards) {
		return nil, fmt.Errorf("experiment: shard %d out of range (%d shards)", i, len(shards))
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if a, ok := e.shardAnalyses[i]; ok {
		return a, nil
	}
	path := filepath.Join(e.Dir, shards[i].File)
	a, warn, err := otf2.AnalyzeFile(path, e.AnalysisParallelism)
	if err != nil {
		return nil, fmt.Errorf("experiment: shard %s: %w", shards[i].File, err)
	}
	if warn != "" {
		e.addWarning(fmt.Sprintf("shard %s: %s", shards[i].File, warn))
	}
	if e.shardAnalyses == nil {
		e.shardAnalyses = make(map[int]*TraceAnalysis)
	}
	e.shardAnalyses[i] = a
	return a, nil
}

// FleetTraceAnalysis merges the analyses of every trace shard into the
// fleet-wide aggregate: exact sums over all processes' dispatch
// latency, task execution and creation time, with the management ratio
// recomputed from the merged totals. The per-thread breakdown is per
// shard (thread IDs of different processes name different locations);
// see ShardTraceAnalysis. Returns (nil, nil) when the experiment has no
// shards.
func (e *Experiment) FleetTraceAnalysis() (*TraceAnalysis, error) {
	shards := e.TraceShards()
	if len(shards) == 0 {
		return nil, nil
	}
	as := make([]*TraceAnalysis, len(shards))
	for i := range shards {
		a, err := e.ShardTraceAnalysis(i)
		if err != nil {
			return nil, err
		}
		as[i] = a
	}
	return trace.MergeAnalyses(as...), nil
}

// ShardBottlenecks runs the bottleneck analysis over shard i of
// TraceShards, out-of-core and cached per shard, salvaging truncated
// shards with a per-shard warning like ShardTraceAnalysis.
func (e *Experiment) ShardBottlenecks(i int) (*BottleneckAnalysis, error) {
	shards := e.TraceShards()
	if i < 0 || i >= len(shards) {
		return nil, fmt.Errorf("experiment: shard %d out of range (%d shards)", i, len(shards))
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if a, ok := e.shardBottlenecks[i]; ok {
		return a, nil
	}
	path := filepath.Join(e.Dir, shards[i].File)
	a, _, warn, err := otf2.AnalyzeFileBottlenecks(path, TraceQuery{}, e.AnalysisParallelism)
	if err != nil {
		return nil, fmt.Errorf("experiment: shard %s: %w", shards[i].File, err)
	}
	if warn != "" {
		e.addWarning(fmt.Sprintf("shard %s: %s", shards[i].File, warn))
	}
	if e.shardBottlenecks == nil {
		e.shardBottlenecks = make(map[int]*BottleneckAnalysis)
	}
	e.shardBottlenecks[i] = a
	return a, nil
}

// FleetBottlenecks aggregates the per-shard bottleneck analyses into
// the fleet summary: per-kind fleet-summed wait-state totals with the
// worst shard each, and the shard with the longest critical path.
// Returns (nil, nil) when the experiment has no shards.
func (e *Experiment) FleetBottlenecks() (*BottleneckFleetSummary, error) {
	shards := e.TraceShards()
	if len(shards) == 0 {
		return nil, nil
	}
	byStream := make(map[string]*BottleneckAnalysis, len(shards))
	for i := range shards {
		a, err := e.ShardBottlenecks(i)
		if err != nil {
			return nil, err
		}
		byStream[shards[i].Stream] = a
	}
	return bottleneck.MergeFleet(byStream), nil
}

// Findings diagnoses tasking inefficiencies in the archived profile, or
// returns (nil, nil) when the experiment holds none.
func (e *Experiment) Findings() ([]Finding, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.findingsSet {
		return e.findings, nil
	}
	rep, err := e.reportLocked()
	if err != nil {
		return nil, err
	}
	if rep != nil {
		e.findings = AnalyzeReport(rep)
	}
	e.findingsSet = true
	return e.findings, nil
}

// addWarning records a non-empty warning once (loading the trace twice
// through different accessors must not duplicate it). Callers hold e.mu.
func (e *Experiment) addWarning(w string) {
	if w == "" {
		return
	}
	for _, have := range e.warnings {
		if have == w {
			return
		}
	}
	e.warnings = append(e.warnings, w)
}

// Warnings returns non-fatal conditions observed while loading the
// archive (currently: a truncated trace salvaged to its intact prefix).
// Warnings accumulate as artifacts are loaded, so check after the
// accessors that interest you.
func (e *Experiment) Warnings() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]string(nil), e.warnings...)
}
