// Benchmarks regenerating the paper's evaluation (one bench per table
// and figure, see DESIGN.md §5) plus ablations of the design decisions
// and microbenchmarks of the measurement primitives.
//
// The figure/table benches run each BOTS kernel instrumented and
// uninstrumented as sub-benchmarks; comparing the two sub-benchmark
// times per code/thread-count reproduces the paper's overhead bars.
// `go run ./cmd/scorep-exp -all` prints the same data as ready tables.
package scorep_test

import (
	"fmt"
	"sync/atomic"
	"testing"

	scorep "repro"
	"repro/internal/bots"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/measure"
	"repro/internal/omp"
	"repro/internal/region"
	"repro/internal/trace"
)

// benchSize keeps `go test -bench=.` affordable; the cmd/scorep-exp tool
// runs the full medium-size evaluation (and cmd/scorep-bench emits the
// machine-readable perf trajectory).
const benchSize = bots.SizeSmall

var benchThreads = []int{1, 4}

// benchListener wires one listener configuration: "uninst" (nil),
// "inst" (profiling), "inst+trace" (the canonical fused
// profiling+tracing pair on one clock, as NewSession(WithTracing())
// builds it — in-memory recorder, so use it only where the workload
// bounds the trace per iteration) or "inst+trace-stream" (the same
// fused pair streaming into a discarding sink: bounded memory at any
// b.N, for the open-loop micro benches). The finish func finalizes the
// configuration.
func benchListener(cfg string) (omp.Listener, func()) {
	switch cfg {
	case "uninst":
		return nil, func() {}
	case "inst":
		m := measure.New()
		return m, func() { m.Finish() }
	case "inst+trace", "inst+trace-stream":
		clk := clock.NewSystem()
		m := measure.NewWithClock(clk, region.Default)
		var rec *trace.Recorder
		if cfg == "inst+trace" {
			rec = trace.NewRecorder(clk)
		} else {
			rec = trace.NewStreamingRecorder(clk, discardEvents{}, 0)
		}
		return trace.NewTee(m, rec), func() { m.Finish(); rec.Finish() }
	}
	panic("unknown bench listener config " + cfg)
}

// discardEvents is a zero-cost streaming sink for benchmarks.
type discardEvents struct{}

func (discardEvents) WriteEvents(int, []trace.Event) error { return nil }

// benchKernel runs one prepared kernel per iteration. It returns the
// last iteration's runtime so callers can report its TeamStats.
func benchKernel(b *testing.B, kernel bots.Kernel, cfg string, threads int) *omp.Runtime {
	b.Helper()
	var sink uint64
	var rt *omp.Runtime
	for i := 0; i < b.N; i++ {
		l, fin := benchListener(cfg)
		rt = omp.NewRuntime(l)
		sink += kernel(rt, threads)
		fin()
	}
	if sink == 0 {
		b.Fatal("kernel produced zero checksum")
	}
	return rt
}

// BenchmarkFig13OverheadCutoff: instrumented (profiling, and the fused
// profiling+tracing pair) vs. uninstrumented runtime of all nine codes
// in optimized (cut-off) form — the paper's Fig. 13.
func BenchmarkFig13OverheadCutoff(b *testing.B) {
	for _, spec := range bots.All {
		kernel := spec.Prepare(benchSize, spec.HasCutoff)
		for _, th := range benchThreads {
			for _, cfg := range []string{"uninst", "inst", "inst+trace"} {
				b.Run(fmt.Sprintf("%s/threads=%d/%s", spec.Name, th, cfg), func(b *testing.B) {
					benchKernel(b, kernel, cfg, th)
				})
			}
		}
	}
}

// BenchmarkFig14OverheadNoCutoff: the stress test — non-cut-off versions
// of the five cut-off codes (paper Fig. 14).
func BenchmarkFig14OverheadNoCutoff(b *testing.B) {
	for _, spec := range bots.CutoffCodes() {
		kernel := spec.Prepare(benchSize, false)
		for _, th := range benchThreads {
			for _, cfg := range []string{"uninst", "inst"} {
				b.Run(fmt.Sprintf("%s/threads=%d/%s", spec.Name, th, cfg), func(b *testing.B) {
					benchKernel(b, kernel, cfg, th)
				})
			}
		}
	}
}

// reportSchedulerContention attaches the scheduler-contention counters
// of the last region run by rt — steals, wasted steal synchronization,
// parks — as per-op custom metrics, so the ablation output shows *why*
// a configuration is slow, not just its ns/op.
func reportSchedulerContention(b *testing.B, rt *omp.Runtime) {
	b.Helper()
	st := rt.LastTeamStats()
	b.ReportMetric(float64(st.Steals), "steals/op")
	b.ReportMetric(float64(st.FailedSteals), "failed-steals/op")
	b.ReportMetric(float64(st.Parks), "parks/op")
	b.ReportMetric(float64(st.Wakes), "wakes/op")
}

// BenchmarkFig15RuntimeScaling: uninstrumented non-cut-off runtimes per
// thread count (paper Fig. 15: runtime grows with threads for ill-sized
// tasks). The contention metrics expose the central queue's management
// overhead growing with the thread count.
func BenchmarkFig15RuntimeScaling(b *testing.B) {
	for _, spec := range bots.CutoffCodes() {
		kernel := spec.Prepare(benchSize, false)
		for _, th := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/threads=%d", spec.Name, th), func(b *testing.B) {
				rt := benchKernel(b, kernel, "uninst", th)
				reportSchedulerContention(b, rt)
			})
		}
	}
}

// BenchmarkTable1TaskGranularity: instrumented runs whose merged task
// trees yield mean task time and task count (paper Table I). The
// per-iteration time is the instrumented kernel; the reported custom
// metrics are the Table I values.
func BenchmarkTable1TaskGranularity(b *testing.B) {
	for _, spec := range bots.CutoffCodes() {
		spec := spec
		b.Run(spec.Name, func(b *testing.B) {
			var rows []exp.Table1Row
			for i := 0; i < b.N; i++ {
				rows = exp.Table1TaskGranularity(exp.Config{Size: benchSize}, 4)
			}
			for _, r := range rows {
				if r.Code == spec.Name {
					b.ReportMetric(r.MeanTimeNs, "mean-task-ns")
					b.ReportMetric(float64(r.NumTasks), "tasks")
				}
			}
		})
	}
}

// BenchmarkTable2ConcurrentTasks reports the per-thread maximum of
// concurrently active task instances (paper Table II) as a custom
// metric per code/variant.
func BenchmarkTable2ConcurrentTasks(b *testing.B) {
	var rows []exp.Table2Row
	for i := 0; i < b.N; i++ {
		rows = exp.Table2ConcurrentTasks(exp.Config{Size: benchSize}, 4)
	}
	for _, r := range rows {
		name := r.Code
		if r.Cutoff {
			name += "-cutoff"
		}
		b.ReportMetric(float64(r.MaxTasks), name)
	}
}

// BenchmarkTable3NqueensRegions times the instrumented non-cut-off
// nqueens at each thread count; region exclusive times (paper Table III)
// are reported as custom metrics.
func BenchmarkTable3NqueensRegions(b *testing.B) {
	for _, th := range []int{1, 2, 4, 8} {
		th := th
		b.Run(fmt.Sprintf("threads=%d", th), func(b *testing.B) {
			var rows []exp.Table3Row
			for i := 0; i < b.N; i++ {
				rows = exp.Table3NQueensRegions(exp.Config{Size: benchSize, Threads: []int{th}})
			}
			r := rows[0]
			b.ReportMetric(float64(r.TaskNs), "task-ns")
			b.ReportMetric(float64(r.TaskwaitNs), "taskwait-ns")
			b.ReportMetric(float64(r.CreateNs), "create-ns")
			b.ReportMetric(float64(r.BarrierNs), "barrier-ns")
		})
	}
}

// BenchmarkTable4NqueensDepth runs the parameter-instrumented nqueens
// (paper Table IV); the depth distribution is validated in tests, the
// bench reports the cost of parameter instrumentation.
func BenchmarkTable4NqueensDepth(b *testing.B) {
	kernel := bots.NQueensDepthKernel(benchSize)
	plain := bots.NQueensSpec.Prepare(benchSize, false)
	b.Run("with-depth-param", func(b *testing.B) { benchKernel(b, kernel, "inst", 4) })
	b.Run("without-param", func(b *testing.B) { benchKernel(b, plain, "inst", 4) })
}

// BenchmarkCaseStudyNQueens: the Section VI outcome — cut-off vs. plain,
// uninstrumented.
func BenchmarkCaseStudyNQueens(b *testing.B) {
	b.Run("plain", func(b *testing.B) {
		benchKernel(b, bots.NQueensSpec.Prepare(benchSize, false), "uninst", 4)
	})
	b.Run("cutoff-depth3", func(b *testing.B) {
		benchKernel(b, bots.NQueensSpec.Prepare(benchSize, true), "uninst", 4)
	})
}

// ---------------------------------------------------------------------
// Ablations (DESIGN.md §7)
// ---------------------------------------------------------------------

// BenchmarkAblationSpinYield compares the task-draining barrier with and
// without cooperative yielding while idle.
func BenchmarkAblationSpinYield(b *testing.B) {
	kernel := bots.FibSpec.Prepare(bots.SizeSmall, true)
	for _, yield := range []bool{true, false} {
		b.Run(fmt.Sprintf("yield=%v", yield), func(b *testing.B) {
			var sink uint64
			for i := 0; i < b.N; i++ {
				rt := omp.NewRuntime(nil)
				rt.SpinYield = yield
				sink += kernel(rt, 4)
			}
			_ = sink
		})
	}
}

// BenchmarkAblationScheduler compares the central team queue (the
// libgomp model the paper measured, default) against work-stealing
// deques on the tiny-task fib workload — quantifying how much of the
// paper's Fig. 15 pathology is the queue design.
func BenchmarkAblationScheduler(b *testing.B) {
	kernel := bots.FibSpec.Prepare(bots.SizeSmall, false)
	for _, sched := range []omp.SchedulerKind{omp.SchedCentralQueue, omp.SchedWorkStealing} {
		for _, th := range []int{1, 8} {
			b.Run(fmt.Sprintf("%s/threads=%d", sched, th), func(b *testing.B) {
				var sink uint64
				rt := omp.NewRuntime(nil)
				rt.Sched = sched
				for i := 0; i < b.N; i++ {
					sink += kernel(rt, th)
				}
				_ = sink
				reportSchedulerContention(b, rt)
			})
		}
	}
}

// BenchmarkAblationNodePooling measures the effect of recycling
// task-instance tree nodes (Section V-B) on a task-heavy profile.
func BenchmarkAblationNodePooling(b *testing.B) {
	reg := region.NewRegistry()
	task := reg.Register("abl.task", "b.go", 1, region.Task)
	bar := reg.Register("abl.barrier", "b.go", 2, region.ImplicitBarrier)
	work := reg.Register("abl.work", "b.go", 3, region.UserFunction)
	for _, pooling := range []bool{true, false} {
		b.Run(fmt.Sprintf("pooling=%v", pooling), func(b *testing.B) {
			clk := clock.NewSystem()
			p := core.NewThreadProfile(0, clk)
			p.SetNodePooling(pooling)
			p.Enter(bar)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.TaskBegin(task)
				p.Enter(work)
				p.Exit(work)
				p.TaskEnd()
			}
		})
	}
}

// BenchmarkAblationClockCost isolates the share of the profiling
// overhead attributable to reading the clock: system clock (anchored
// and zero-value lazily anchored through the sync.Once path) vs. a
// counter-based fake clock. The raw-read sub-benches measure Now alone,
// outside the profiling engine.
func BenchmarkAblationClockCost(b *testing.B) {
	reg := region.NewRegistry()
	work := reg.Register("clk.work", "b.go", 1, region.UserFunction)
	run := func(b *testing.B, clk clock.Clock) {
		p := core.NewThreadProfile(0, clk)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Enter(work)
			p.Exit(work)
		}
	}
	b.Run("system-clock", func(b *testing.B) { run(b, clock.NewSystem()) })
	b.Run("system-clock-zero-value", func(b *testing.B) { run(b, &clock.System{}) })
	b.Run("counter-clock", func(b *testing.B) {
		var c atomic.Int64
		run(b, clock.Func(func() int64 { return c.Add(1) }))
	})
	rawRead := func(b *testing.B, clk clock.Clock) {
		var sink int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sink += clk.Now()
		}
		if sink < 0 {
			b.Fatal("clock went backwards")
		}
	}
	b.Run("raw-read", func(b *testing.B) { rawRead(b, clock.NewSystem()) })
	b.Run("raw-read-zero-value", func(b *testing.B) { rawRead(b, &clock.System{}) })
}

// BenchmarkAblationListenerNilCheck measures the uninstrumented event
// emission cost (the nil-listener branch), i.e. what an OPARI2-less
// binary pays in this design.
func BenchmarkAblationListenerNilCheck(b *testing.B) {
	reg := region.NewRegistry()
	par := reg.Register("nil.parallel", "b.go", 1, region.Parallel)
	task := reg.Register("nil.task", "b.go", 2, region.Task)
	tw := reg.Register("nil.taskwait", "b.go", 3, region.Taskwait)
	rt := omp.NewRuntime(nil)
	for i := 0; i < b.N; i++ {
		rt.Parallel(1, par, func(t *omp.Thread) {
			for j := 0; j < 100; j++ {
				t.NewTask(task, func(*omp.Thread) {})
			}
			t.Taskwait(tw)
		})
	}
}

// ---------------------------------------------------------------------
// Microbenchmarks of the measurement primitives
// ---------------------------------------------------------------------

// microConfigs maps the micro-bench sub-benchmark labels to
// benchListener configurations (streaming recorder: open benchmark
// loops must not grow an in-memory trace).
var microConfigs = []struct{ label, cfg string }{
	{"profile", "inst"},
	{"profile+trace", "inst+trace-stream"},
}

// BenchmarkEnterExit measures one instrumented region visit: in the
// profiling engine alone (core), and through the full runtime->listener
// per-event path for profiling and fused profiling+tracing.
func BenchmarkEnterExit(b *testing.B) {
	b.Run("core", func(b *testing.B) {
		reg := region.NewRegistry()
		work := reg.Register("micro.work", "b.go", 1, region.UserFunction)
		p := core.NewThreadProfile(0, clock.NewSystem())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Enter(work)
			p.Exit(work)
		}
	})
	par := region.MustRegister("micro.par", "b.go", 10, region.Parallel)
	work := region.MustRegister("micro.workrt", "b.go", 11, region.UserFunction)
	for _, mc := range microConfigs {
		b.Run(mc.label, func(b *testing.B) {
			b.ReportAllocs()
			l, fin := benchListener(mc.cfg)
			rt := omp.NewRuntime(l)
			rt.Parallel(1, par, func(t *omp.Thread) {
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					l.Enter(t, work)
					l.Exit(t, work)
				}
				b.StopTimer()
			})
			fin()
		})
	}
}

// BenchmarkTaskBeginEnd measures the full task-instance lifecycle: in
// the profiling engine alone (instance allocation, switch, stub
// accounting, merge), and through the runtime as an undeferred task
// (five events per op) for profiling and fused profiling+tracing.
func BenchmarkTaskBeginEnd(b *testing.B) {
	b.Run("core", func(b *testing.B) {
		reg := region.NewRegistry()
		task := reg.Register("micro.task", "b.go", 1, region.Task)
		bar := reg.Register("micro.barrier", "b.go", 2, region.ImplicitBarrier)
		p := core.NewThreadProfile(0, clock.NewSystem())
		p.Enter(bar)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.TaskBegin(task)
			p.TaskEnd()
		}
	})
	par := region.MustRegister("micro.tpar", "b.go", 20, region.Parallel)
	task := region.MustRegister("micro.taskrt", "b.go", 21, region.Task)
	for _, mc := range microConfigs {
		b.Run(mc.label, func(b *testing.B) {
			b.ReportAllocs()
			l, fin := benchListener(mc.cfg)
			rt := omp.NewRuntime(l)
			rt.Parallel(1, par, func(t *omp.Thread) {
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					t.NewTask(task, func(*omp.Thread) {}, omp.If(false))
				}
				b.StopTimer()
			})
			fin()
		})
	}
}

// BenchmarkTaskSpawnThroughput measures raw runtime task throughput,
// uninstrumented, per thread count.
func BenchmarkTaskSpawnThroughput(b *testing.B) {
	reg := region.NewRegistry()
	par := reg.Register("thr.parallel", "b.go", 1, region.Parallel)
	task := reg.Register("thr.task", "b.go", 2, region.Task)
	for _, th := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("threads=%d", th), func(b *testing.B) {
			rt := omp.NewRuntime(nil)
			rt.Parallel(th, par, func(t *omp.Thread) {
				if t.ID != 0 {
					return
				}
				for i := 0; i < b.N; i++ {
					t.NewTask(task, func(*omp.Thread) {})
				}
			})
		})
	}
}

// BenchmarkParameterInt measures parameter-node creation (Table IV cost).
func BenchmarkParameterInt(b *testing.B) {
	reg := region.NewRegistry()
	task := reg.Register("param.task", "b.go", 1, region.Task)
	bar := reg.Register("param.barrier", "b.go", 2, region.ImplicitBarrier)
	p := core.NewThreadProfile(0, clock.NewSystem())
	p.Enter(bar)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.TaskBegin(task)
		p.ParameterInt("depth", int64(i%14))
		p.TaskEnd()
	}
}

// BenchmarkAggregate measures cross-thread report aggregation on a
// realistic fib profile.
func BenchmarkAggregate(b *testing.B) {
	m := measure.New()
	rt := omp.NewRuntime(m)
	bots.FibSpec.Prepare(bots.SizeTiny, false)(rt, 4)
	m.Finish()
	locs := m.Locations()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep := scorep.AggregateReport(locs); rep.NumThreads != 4 {
			b.Fatal("bad aggregation")
		}
	}
}
