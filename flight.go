package scorep

import (
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/bottleneck"
	"repro/internal/otf2"
	"repro/internal/trace"
)

// DefaultFlightRingChunks is the per-thread ring depth WithFlightRecorder
// uses when given ringChunks <= 0.
const DefaultFlightRingChunks = trace.DefaultFlightRingChunks

// flightDumpTraceFile is the archive file name inside a dump directory —
// the same name an experiment directory uses, so every trace-consuming
// tool opens a dump like any experiment.
const flightDumpTraceFile = experimentTraceFile

// FlightRecorderInfo is the flight recorder's eviction accounting as
// recorded in a dump's (or experiment's) meta.json: what the ring
// retained, what it evicted, and — for dumps — what triggered the dump
// and whether the archive write completed.
type FlightRecorderInfo struct {
	// RingChunks and ChunkEvents state the recorder configuration: at
	// most RingChunks sealed chunks of ChunkEvents events retained per
	// thread, plus one partial chunk.
	RingChunks  int `json:"ringChunks"`
	ChunkEvents int `json:"chunkEvents"`
	// RetainedEvents is the total event count the dump retained.
	RetainedEvents int `json:"retainedEvents"`
	// DroppedEvents and DroppedChunks count what the rings evicted
	// before the dump — the events that are NOT in the archive.
	DroppedEvents uint64 `json:"droppedEvents"`
	DroppedChunks uint64 `json:"droppedChunks"`
	// Trigger names what caused the dump: "api", "signal", "panic",
	// "bottleneck", "http", or "end" for the final window of End.
	Trigger string `json:"trigger,omitempty"`
	// Partial marks a dump whose archive write failed midway (e.g. a
	// full disk): trace.otf2 holds a salvageable intact prefix — with
	// the accounting chunk at its front — rather than a complete
	// archive, and Error describes the failure.
	Partial bool   `json:"partial,omitempty"`
	Error   string `json:"error,omitempty"`
}

// flightRecorderInfo builds the meta.json form of a recorder snapshot.
func flightRecorderInfo(st trace.FlightStats, trigger string, writeErr error) *FlightRecorderInfo {
	info := &FlightRecorderInfo{
		RingChunks:     st.RingChunks,
		ChunkEvents:    st.ChunkEvents,
		RetainedEvents: st.RetainedEvents,
		DroppedEvents:  st.DroppedEvents,
		DroppedChunks:  st.DroppedChunks,
		Trigger:        trigger,
	}
	if writeErr != nil {
		info.Partial = true
		info.Error = writeErr.Error()
	}
	return info
}

// FlightRecorderThreadStats is one thread's live flight-recorder
// accounting, as exposed by Session.FlightRecorderStats and the
// introspection endpoint.
type FlightRecorderThreadStats struct {
	Thread         int    `json:"thread"`
	RetainedEvents int    `json:"retainedEvents"`
	DroppedEvents  uint64 `json:"droppedEvents"`
	DroppedChunks  uint64 `json:"droppedChunks"`
}

// FlightRecorderStats is a live snapshot of a session's flight
// recorder: the ring configuration and current retention/eviction
// counters, plus the dump-trigger history. It is the JSON payload of
// the introspection endpoint (FlightRecorderHandler, and the
// "scorep.flightrecorder" expvar).
type FlightRecorderStats struct {
	Enabled        bool                        `json:"enabled"`
	RingChunks     int                         `json:"ringChunks,omitempty"`
	ChunkEvents    int                         `json:"chunkEvents,omitempty"`
	RetainedEvents int                         `json:"retainedEvents"`
	DroppedEvents  uint64                      `json:"droppedEvents"`
	DroppedChunks  uint64                      `json:"droppedChunks"`
	Threads        []FlightRecorderThreadStats `json:"threads,omitempty"`
	// Dumps counts completed dump attempts (successful or not);
	// LastTrigger/LastDumpDir/LastDumpError describe the most recent one.
	Dumps         int64  `json:"dumps"`
	LastTrigger   string `json:"lastTrigger,omitempty"`
	LastDumpDir   string `json:"lastDumpDir,omitempty"`
	LastDumpError string `json:"lastDumpError,omitempty"`
}

// flightState is the per-session dump/trigger machinery of a
// flight-recorder session.
type flightState struct {
	s *Session

	// dumpMu serializes dumps (concurrent triggers queue up rather than
	// interleave directory writes) and guards seq, the auto-directory
	// counter.
	dumpMu sync.Mutex
	seq    int

	dumps                                 atomic.Int64
	statMu                                sync.Mutex
	lastTrigger, lastDumpDir, lastDumpErr string

	sigCh    chan os.Signal
	stopCh   chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// newFlightState wires the configured triggers of a flight-recorder
// session: the dump signal (SIGUSR1 unless overridden or disabled) and
// the bottleneck threshold trigger, plus the shared expvar.
func newFlightState(s *Session) *flightState {
	f := &flightState{s: s, stopCh: make(chan struct{})}
	sig := s.cfg.dumpSignal
	if !s.cfg.dumpSignalSet {
		sig = syscall.SIGUSR1
	}
	if sig != nil {
		f.startSignal(sig)
	}
	if tc := s.cfg.btTrigger; tc != nil {
		f.startBottleneckTrigger(*tc)
	}
	publishFlightExpvar(s)
	return f
}

// startSignal arms the OS-signal dump trigger.
func (f *flightState) startSignal(sig os.Signal) {
	f.sigCh = make(chan os.Signal, 1)
	signal.Notify(f.sigCh, sig)
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		for {
			select {
			case <-f.stopCh:
				return
			case <-f.sigCh:
				f.dump("", "signal") //nolint:errcheck // recorded in LastDumpError; a signal has no caller to fail
			}
		}
	}()
}

// startBottleneckTrigger arms the analysis-driven trigger: snapshot the
// window every interval, run the bottleneck analysis over it, and dump
// once when any finding's severity reaches the bound.
func (f *flightState) startBottleneckTrigger(tc bottleneckTriggerConfig) {
	interval := tc.interval
	if interval <= 0 {
		interval = time.Second
	}
	minSev := tc.minSeverity
	if minSev > 1 {
		minSev = 1
	}
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-f.stopCh:
				return
			case <-t.C:
				tr, _ := f.s.rec.FlightSnapshot()
				a := bottleneck.AnalyzeQuery(tr, trace.Query{}, f.s.cfg.analysisWorkers)
				for _, fd := range a.Findings {
					if fd.Severity >= minSev {
						f.dump("", "bottleneck") //nolint:errcheck // recorded in LastDumpError
						return                   // one dump per session: capture the first occurrence
					}
				}
			}
		}
	}()
}

// stop disarms the triggers and waits for in-flight trigger goroutines.
func (f *flightState) stop() {
	f.stopOnce.Do(func() {
		if f.sigCh != nil {
			signal.Stop(f.sigCh)
		}
		close(f.stopCh)
	})
	f.wg.Wait()
}

// autoDir returns the next unused auto-numbered dump directory:
// <experiment dir>/flight-NNN when an experiment directory is
// configured, scorep-flight-NNN in the working directory otherwise.
// Caller holds dumpMu.
func (f *flightState) autoDir() string {
	for {
		f.seq++
		var dir string
		if f.s.cfg.expDir != "" {
			dir = filepath.Join(f.s.cfg.expDir, fmt.Sprintf("flight-%03d", f.seq))
		} else {
			dir = fmt.Sprintf("scorep-flight-%03d", f.seq)
		}
		if _, err := os.Stat(dir); os.IsNotExist(err) {
			return dir
		}
	}
}

// dump snapshots the retained window and materializes it at dir (auto-
// numbered when empty), recording the attempt in the trigger stats.
func (f *flightState) dump(dir, trigger string) (string, error) {
	f.dumpMu.Lock()
	defer f.dumpMu.Unlock()
	if dir == "" {
		dir = f.autoDir()
	}
	tr, st := f.s.rec.FlightSnapshot()
	err := writeFlightDumpDir(dir, tr, st, trigger, f.s.cfg)

	f.dumps.Add(1)
	f.statMu.Lock()
	f.lastTrigger, f.lastDumpDir, f.lastDumpErr = trigger, dir, ""
	if err != nil {
		f.lastDumpErr = err.Error()
	}
	f.statMu.Unlock()
	return dir, err
}

// writeFlightDumpDir materializes one consistent window snapshot as an
// experiment-shaped directory: trace.otf2 (the accounting chunk first,
// then the retained events, then the footer index) and meta.json
// written last. A failed archive write — a full disk, typically — still
// writes the metadata, marked Partial with the error, so the salvage
// state of the directory is self-describing; the write error is
// returned either way.
func writeFlightDumpDir(dir string, tr *Trace, st trace.FlightStats, trigger string, cfg sessionConfig) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("flight dump: %w", err)
	}
	var werr error
	af, err := os.Create(filepath.Join(dir, flightDumpTraceFile))
	if err != nil {
		werr = err
	} else {
		werr = otf2.WriteFlightDump(af, tr, otf2.FlightInfoFromStats(st), otf2.WithCompression(cfg.traceComp))
		if cerr := af.Close(); werr == nil {
			werr = cerr
		}
	}
	meta := ExperimentMeta{
		FormatVersion: ExperimentMetaVersion,
		CreatedUnixNs: time.Now().UnixNano(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		GoVersion:     runtime.Version(),
		Config: ExperimentConfig{
			Profiling:        cfg.profiling,
			Tracing:          true,
			FilterPatterns:   cfg.filters,
			Scheduler:        cfg.sched.String(),
			TraceCompression: cfg.traceComp.String(),
		},
		Threads:        len(st.Threads),
		HasTrace:       true,
		TraceFormat:    fmt.Sprintf("spotf2-v%d", otf2.FormatVersion),
		FlightRecorder: flightRecorderInfo(st, trigger, werr),
	}
	merr := writeExperimentFile(dir, experimentMetaFile, func(mf *os.File) error {
		enc := json.NewEncoder(mf)
		enc.SetIndent("", "  ")
		return enc.Encode(meta)
	})
	if werr != nil {
		return fmt.Errorf("flight dump: writing %s: %w", filepath.Join(dir, flightDumpTraceFile), werr)
	}
	return merr
}

// errNoFlightRecorder reports a flight-recorder operation on a session
// without one.
var errNoFlightRecorder = errors.New("scorep: session has no flight recorder (see WithFlightRecorder)")

// DumpFlightRecorder materializes the flight recorder's current window
// as a complete experiment directory at dir: trace.otf2 — a valid
// archive carrying the retained events, their definitions, the footer
// index and the eviction-accounting chunk — plus meta.json stating the
// dropped-event/chunk counts. An empty dir picks the next auto-numbered
// directory (flight-NNN under the experiment directory, scorep-flight-NNN
// otherwise). The snapshot is taken concurrently with recording; the
// session continues undisturbed. The resolved directory is returned
// even on error (a partial dump salvages its intact prefix and a
// Partial-marked meta.json).
func (s *Session) DumpFlightRecorder(dir string) (string, error) {
	if s.flight == nil {
		return "", errNoFlightRecorder
	}
	return s.flight.dump(dir, "api")
}

// WriteFlightRecorderArchive streams the flight recorder's current
// window as a complete archive (accounting chunk, definitions, events,
// footer index) to w — the dump path without the directory shape, for
// custom sinks and fault-injection tests.
func (s *Session) WriteFlightRecorderArchive(w io.Writer) error {
	if s.flight == nil {
		return errNoFlightRecorder
	}
	tr, st := s.rec.FlightSnapshot()
	return otf2.WriteFlightDump(w, tr, otf2.FlightInfoFromStats(st), otf2.WithCompression(s.cfg.traceComp))
}

// DumpOnPanic is the panic-salvage trigger: deferred around measured
// code, it dumps the flight recorder when the code panics — preserving
// the window that led up to the failure — and then re-panics with the
// original value. Non-panicking returns and sessions without a flight
// recorder pass through untouched. dir as in DumpFlightRecorder ("" for
// auto-numbered).
//
//	defer s.DumpOnPanic("crash-dump")
//	riskyWorkload(s)
func (s *Session) DumpOnPanic(dir string) {
	if r := recover(); r != nil {
		if s.flight != nil {
			s.flight.dump(dir, "panic") //nolint:errcheck // recorded in LastDumpError; the panic must proceed
		}
		panic(r)
	}
}

// FlightRecorderStats returns a live snapshot of the session's flight
// recorder — ring configuration, per-thread retention and eviction
// counters, dump-trigger history — without copying any events. The zero
// value (Enabled false) is returned for sessions without a flight
// recorder.
func (s *Session) FlightRecorderStats() FlightRecorderStats {
	if s.flight == nil {
		return FlightRecorderStats{}
	}
	st := s.rec.FlightStatsNow()
	out := FlightRecorderStats{
		Enabled:        true,
		RingChunks:     st.RingChunks,
		ChunkEvents:    st.ChunkEvents,
		RetainedEvents: st.RetainedEvents,
		DroppedEvents:  st.DroppedEvents,
		DroppedChunks:  st.DroppedChunks,
		Dumps:          s.flight.dumps.Load(),
	}
	for _, ts := range st.Threads {
		out.Threads = append(out.Threads, FlightRecorderThreadStats{
			Thread:         ts.Thread,
			RetainedEvents: ts.RetainedEvents,
			DroppedEvents:  ts.DroppedEvents,
			DroppedChunks:  ts.DroppedChunks,
		})
	}
	s.flight.statMu.Lock()
	out.LastTrigger, out.LastDumpDir, out.LastDumpError =
		s.flight.lastTrigger, s.flight.lastDumpDir, s.flight.lastDumpErr
	s.flight.statMu.Unlock()
	return out
}

// FlightRecorderHandler returns the HTTP introspection endpoint of the
// session's flight recorder: GET responds with the FlightRecorderStats
// JSON; POST triggers a dump now (to the "dir" form/query parameter, or
// an auto-numbered directory) and responds with the dump directory.
// Mount it wherever the process serves HTTP:
//
//	http.Handle("/debug/scorep/flight", s.FlightRecorderHandler())
func (s *Session) FlightRecorderHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		switch req.Method {
		case http.MethodGet:
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(s.FlightRecorderStats()) //nolint:errcheck // best-effort introspection response
		case http.MethodPost:
			if s.flight == nil {
				http.Error(w, errNoFlightRecorder.Error(), http.StatusConflict)
				return
			}
			dir, err := s.flight.dump(req.FormValue("dir"), "http")
			if err != nil {
				http.Error(w, fmt.Sprintf("dump to %s: %v", dir, err), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(map[string]string{"dir": dir}) //nolint:errcheck
		default:
			http.Error(w, "GET for stats, POST to dump", http.StatusMethodNotAllowed)
		}
	})
}

// Shared expvar: the most recent flight-recorder session publishes its
// stats under "scorep.flightrecorder". The variable is registered once
// (expvar panics on re-registration) and reads through an atomic
// session pointer, so successive sessions hand it over naturally.
var (
	flightExpvarSession atomic.Pointer[Session]
	flightExpvarOnce    sync.Once
)

func publishFlightExpvar(s *Session) {
	flightExpvarSession.Store(s)
	flightExpvarOnce.Do(func() {
		if expvar.Get("scorep.flightrecorder") != nil {
			return
		}
		expvar.Publish("scorep.flightrecorder", expvar.Func(func() any {
			if cur := flightExpvarSession.Load(); cur != nil {
				return cur.FlightRecorderStats()
			}
			return FlightRecorderStats{}
		}))
	})
}
