package scorep_test

import (
	"bytes"
	"strings"
	"testing"

	scorep "repro"
)

// TestFacadeTraceAndTimeline exercises the tracing exports: recorder,
// tee, JSONL round trip, analysis, timeline, utilization.
func TestFacadeTraceAndTimeline(t *testing.T) {
	par := scorep.RegisterRegion("fa.parallel", "facade_test.go", 1, scorep.RegionParallel)
	task := scorep.RegisterRegion("fa.task", "facade_test.go", 2, scorep.RegionTask)
	tw := scorep.RegisterRegion("fa.taskwait", "facade_test.go", 3, scorep.RegionTaskwait)

	m := scorep.NewMeasurement()
	rec := scorep.NewTraceRecorder()
	rt := scorep.NewRuntime(scorep.NewTee(m, rec))
	rt.Parallel(2, par, func(th *scorep.Thread) {
		if th.ID == 0 {
			for i := 0; i < 16; i++ {
				th.NewTask(task, func(c *scorep.Thread) {
					scorep.ParameterString(c, "kind", "unit")
					s := 0
					for j := 0; j < 5000; j++ {
						s += j
					}
					_ = s
				})
			}
			th.Taskwait(tw)
		}
	})
	m.Finish()
	tr := rec.Finish()

	a := scorep.AnalyzeTrace(tr)
	if a.TaskExecution.Count != 16 {
		t.Errorf("trace analysis fragments = %d, want 16", a.TaskExecution.Count)
	}

	var buf bytes.Buffer
	if err := scorep.WriteTraceJSONL(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := scorep.ReadTraceJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEvents() != tr.NumEvents() {
		t.Error("trace JSONL round trip lost events")
	}

	var tl bytes.Buffer
	if err := scorep.RenderTimeline(&tl, tr, scorep.TimelineOptions{Width: 40, ShowLegend: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tl.String(), "#") {
		t.Error("timeline shows no task execution")
	}
	us := scorep.ComputeUtilization(tr)
	if len(us) != 2 {
		t.Errorf("utilization rows = %d", len(us))
	}
}

// TestFacadeFilterAndDiff exercises Filter, DiffReports and
// AnalyzeReport through the facade.
func TestFacadeFilterAndDiff(t *testing.T) {
	par := scorep.RegisterRegion("fb.parallel", "facade_test.go", 10, scorep.RegionParallel)
	task := scorep.RegisterRegion("fb.task", "facade_test.go", 11, scorep.RegionTask)
	tw := scorep.RegisterRegion("fb.taskwait", "facade_test.go", 12, scorep.RegionTaskwait)
	noisy := scorep.RegisterRegion("noisy_helper", "facade_test.go", 13, scorep.RegionFunction)

	runOnce := func(tasks int, filtered bool) *scorep.Report {
		m := scorep.NewMeasurement()
		var l scorep.Listener = m
		if filtered {
			l = scorep.NewFilter(m, "noisy_*")
		}
		rt := scorep.NewRuntime(l)
		rt.Parallel(2, par, func(th *scorep.Thread) {
			if th.ID == 0 {
				for i := 0; i < tasks; i++ {
					th.NewTask(task, func(c *scorep.Thread) {
						scorep.InstrumentFunction(c, noisy, func() {})
					})
				}
				th.Taskwait(tw)
			}
		})
		m.Finish()
		return scorep.AggregateReport(m.Locations())
	}

	unfiltered := runOnce(8, false)
	filtered := runOnce(8, true)
	if unfiltered.TaskTree("fb.task").Find("noisy_helper") == nil {
		t.Error("unfiltered run missing helper region")
	}
	if filtered.TaskTree("fb.task").Find("noisy_helper") != nil {
		t.Error("filter did not exclude helper region")
	}

	bigger := runOnce(32, false)
	rd := scorep.DiffReports(unfiltered, bigger)
	found := false
	for _, d := range rd.TopRegressions(10) {
		if d.Name == "fb.task" && d.DeltaVisits() == 24 {
			found = true
		}
	}
	if !found {
		t.Error("diff did not surface the 24 extra task visits")
	}
	var buf bytes.Buffer
	if err := scorep.RenderReportDiff(&buf, rd); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "TASK TREE DIFFS") {
		t.Error("diff render incomplete")
	}

	findings := scorep.AnalyzeReport(unfiltered)
	var fbuf bytes.Buffer
	scorep.FormatFindings(&fbuf, findings)
	if fbuf.Len() == 0 {
		t.Error("findings formatting produced nothing")
	}
}

// TestFacadeSchedulerKinds checks the scheduler re-exports.
func TestFacadeSchedulerKinds(t *testing.T) {
	par := scorep.RegisterRegion("fc.parallel", "facade_test.go", 20, scorep.RegionParallel)
	task := scorep.RegisterRegion("fc.task", "facade_test.go", 21, scorep.RegionTask)
	for _, sched := range []scorep.SchedulerKind{scorep.SchedCentralQueue, scorep.SchedWorkStealing} {
		rt := scorep.NewRuntime(nil)
		rt.Sched = sched
		ran := 0
		rt.Parallel(2, par, func(th *scorep.Thread) {
			if th.ID == 0 {
				th.NewTask(task, func(*scorep.Thread) { ran++ })
			}
		})
		if ran != 1 {
			t.Errorf("sched=%v: task did not run", sched)
		}
	}
}

// TestFacadeTeamStats checks that the scheduler-observability counters
// surface through the facade's TeamStats re-export.
func TestFacadeTeamStats(t *testing.T) {
	par := scorep.RegisterRegion("fs.parallel", "facade_test.go", 30, scorep.RegionParallel)
	task := scorep.RegisterRegion("fs.task", "facade_test.go", 31, scorep.RegionTask)
	rt := scorep.NewRuntime(nil)
	rt.Sched = scorep.SchedWorkStealing
	rt.Parallel(2, par, func(th *scorep.Thread) {
		for i := 0; i < 10; i++ {
			th.NewTask(task, func(*scorep.Thread) {})
		}
	})
	var st scorep.TeamStats = rt.LastTeamStats()
	if st.TasksCreated != 20 {
		t.Errorf("TasksCreated = %d, want 20", st.TasksCreated)
	}
	if len(st.ThreadSteals) != 2 {
		t.Errorf("ThreadSteals has %d entries, want one per thread (2)", len(st.ThreadSteals))
	}
	if st.StealAttempts < st.Steals {
		t.Errorf("StealAttempts = %d < Steals = %d", st.StealAttempts, st.Steals)
	}
}
