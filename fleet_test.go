package scorep_test

import (
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	scorep "repro"
	"repro/internal/clock"
)

// startFleetDaemon runs an in-process trace-sink server on a unix
// socket, exactly as cmd/scorep-daemon does.
func startFleetDaemon(t *testing.T) (*scorep.TraceSinkServer, string, string) {
	t.Helper()
	dir := t.TempDir()
	srv, err := scorep.NewTraceSinkServer(dir)
	if err != nil {
		t.Fatal(err)
	}
	sock := filepath.Join(dir, "d.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ln)
	}()
	t.Cleanup(func() {
		_ = srv.Close()
		<-done
	})
	return srv, dir, "unix://" + sock
}

// countingClock is a deterministic monotonic clock: every Now() ticks
// once, so identical instruction sequences produce identical traces.
func countingClock() scorep.Clock {
	var n atomic.Int64
	return clock.Func(func() int64 { return n.Add(10) })
}

// fleetWorkload runs a fixed single-threaded task workload — with a
// deterministic clock, every run of it records the same event stream.
func fleetWorkload(s *scorep.Session, tasks int, par, task, tw *scorep.Region) {
	s.Parallel(1, par, func(th *scorep.Thread) {
		for i := 0; i < tasks; i++ {
			th.NewTask(task, func(*scorep.Thread) {})
		}
		th.Taskwait(tw)
	})
}

// TestFleetEndToEnd streams two sessions into one in-process daemon,
// seals the fleet experiment, reopens it, and checks each shard's
// analysis is identical to a local recording of the same workload —
// the paper's per-rank archives, aggregated across the fleet.
func TestFleetEndToEnd(t *testing.T) {
	par := scorep.RegisterRegion("fl.parallel", "fleet_test.go", 1, scorep.RegionParallel)
	task := scorep.RegisterRegion("fl.task", "fleet_test.go", 2, scorep.RegionTask)
	tw := scorep.RegisterRegion("fl.taskwait", "fleet_test.go", 3, scorep.RegionTaskwait)

	// Local reference: the same workload under the same deterministic
	// clock, traced in memory.
	ref := scorep.NewSession(scorep.WithTracing(), scorep.WithoutProfiling(),
		scorep.WithClock(countingClock()))
	fleetWorkload(ref, 20, par, task, tw)
	refRes, err := ref.End()
	if err != nil {
		t.Fatal(err)
	}
	want := refRes.TraceAnalysis()
	if want == nil || want.Switches == 0 {
		t.Fatalf("reference workload recorded nothing: %+v", want)
	}

	srv, dir, addr := startFleetDaemon(t)
	start := time.Now()
	for _, id := range []string{"alpha", "beta"} {
		s := scorep.NewSession(
			scorep.WithRemoteTrace(addr),
			scorep.WithRemoteTraceStream(id),
			scorep.WithoutProfiling(),
			scorep.WithClock(countingClock()))
		if cl := s.RemoteTraceSink(); cl == nil || cl.StreamID() != id {
			t.Fatalf("remote sink client not wired for %s", id)
		}
		fleetWorkload(s, 20, par, task, tw)
		if _, err := s.End(); err != nil {
			t.Fatalf("session %s: %v", id, err)
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	// Seal exactly as scorep-daemon does.
	var shards []scorep.TraceShard
	for _, st := range srv.Streams() {
		shards = append(shards, scorep.TraceShard{
			File: st.File, Stream: st.ID, Bytes: st.Bytes,
			DroppedEvents: st.DroppedEvents, Complete: st.Complete,
		})
	}
	if err := scorep.SaveFleetExperiment(dir, time.Since(start), shards); err != nil {
		t.Fatal(err)
	}

	exp, err := scorep.OpenExperiment(dir)
	if err != nil {
		t.Fatal(err)
	}
	got := exp.TraceShards()
	if len(got) != 2 {
		t.Fatalf("TraceShards = %+v, want 2", got)
	}
	for i, sh := range got {
		if !sh.Complete {
			t.Fatalf("shard %+v not complete", sh)
		}
		a, err := exp.ShardTraceAnalysis(i)
		if err != nil {
			t.Fatal(err)
		}
		// The deterministic clock makes the streamed shard's analysis
		// bit-identical to the local in-memory recording's.
		if !reflect.DeepEqual(want, a) {
			t.Fatalf("shard %s analysis differs from local recording:\nlocal:  %+v\nremote: %+v",
				sh.Stream, want, a)
		}
	}

	fleet, err := exp.FleetTraceAnalysis()
	if err != nil {
		t.Fatal(err)
	}
	if fleet.Switches != 2*want.Switches {
		t.Fatalf("fleet switches = %d, want %d", fleet.Switches, 2*want.Switches)
	}
	if fleet.DispatchLatency.Count != 2*want.DispatchLatency.Count ||
		fleet.DispatchLatency.Sum != 2*want.DispatchLatency.Sum {
		t.Fatalf("fleet dispatch latency %+v, want doubled %+v", fleet.DispatchLatency, want.DispatchLatency)
	}
	if fleet.TaskExecution.Sum != 2*want.TaskExecution.Sum {
		t.Fatalf("fleet task execution %+v, want doubled %+v", fleet.TaskExecution, want.TaskExecution)
	}
	// Two identical shards: the merged ratio equals the per-shard one.
	if diff := fleet.ManagementRatio - want.ManagementRatio; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("fleet management ratio = %v, want %v", fleet.ManagementRatio, want.ManagementRatio)
	}
	if len(exp.Warnings()) != 0 {
		t.Fatalf("clean fleet produced warnings: %v", exp.Warnings())
	}
}

// TestFleetTruncatedShardSalvage severs one shard (simulating a client
// crash mid-run) and checks the experiment still opens, salvages the
// intact prefix with a per-shard warning, and leaves the other shard's
// analysis untouched.
func TestFleetTruncatedShardSalvage(t *testing.T) {
	par := scorep.RegisterRegion("ft.parallel", "fleet_test.go", 10, scorep.RegionParallel)
	task := scorep.RegisterRegion("ft.task", "fleet_test.go", 11, scorep.RegionTask)
	tw := scorep.RegisterRegion("ft.taskwait", "fleet_test.go", 12, scorep.RegionTaskwait)

	srv, dir, addr := startFleetDaemon(t)
	s := scorep.NewSession(scorep.WithRemoteTrace(addr),
		scorep.WithRemoteTraceStream("whole"), scorep.WithoutProfiling(),
		scorep.WithClock(countingClock()))
	// Enough tasks that the archive spans several 32 KiB chunks — a 3/4
	// cut must land mid-stream with whole chunks before it.
	fleetWorkload(s, 20_000, par, task, tw)
	if _, err := s.End(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	// Fabricate the severed shard: the intact prefix of a sealed one,
	// cut mid-archive — byte-wise what a daemon keeps when a client
	// dies (its bufio flush preserves everything received intact).
	whole, err := os.ReadFile(filepath.Join(dir, "trace-whole.otf2"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "trace-cut.otf2"), whole[:3*len(whole)/4], 0o644); err != nil {
		t.Fatal(err)
	}

	// Seal with no shard list: TraceShards falls back to globbing and
	// must detect completeness from the footer index itself.
	if err := scorep.SaveFleetExperiment(dir, time.Second, nil); err != nil {
		t.Fatal(err)
	}
	exp, err := scorep.OpenExperiment(dir)
	if err != nil {
		t.Fatal(err)
	}
	shards := exp.TraceShards()
	if len(shards) != 2 {
		t.Fatalf("TraceShards = %+v, want 2 (globbed)", shards)
	}
	byStream := map[string]int{}
	for i, sh := range shards {
		byStream[sh.Stream] = i
	}
	if !shards[byStream["whole"]].Complete {
		t.Fatalf("sealed shard probed incomplete: %+v", shards[byStream["whole"]])
	}
	if shards[byStream["cut"]].Complete {
		t.Fatalf("truncated shard probed complete: %+v", shards[byStream["cut"]])
	}

	wholeA, err := exp.ShardTraceAnalysis(byStream["whole"])
	if err != nil {
		t.Fatal(err)
	}
	cutA, err := exp.ShardTraceAnalysis(byStream["cut"])
	if err != nil {
		t.Fatalf("truncated shard not salvaged: %v", err)
	}
	if cutA.Switches == 0 || cutA.Switches >= wholeA.Switches {
		t.Fatalf("salvaged prefix switches = %d, want in (0, %d)", cutA.Switches, wholeA.Switches)
	}
	found := false
	for _, w := range exp.Warnings() {
		if strings.Contains(w, "trace-cut.otf2") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no per-shard warning names the truncated shard: %v", exp.Warnings())
	}

	fleet, err := exp.FleetTraceAnalysis()
	if err != nil {
		t.Fatal(err)
	}
	if fleet.Switches != wholeA.Switches+cutA.Switches {
		t.Fatalf("fleet switches = %d, want %d", fleet.Switches, wholeA.Switches+cutA.Switches)
	}
}

// TestRemoteTraceEnvAndErrors covers the facade-level failure modes:
// malformed SCOREP_TRACE_SINK fails session construction eagerly, and a
// dead daemon surfaces at End without hanging the workload.
func TestRemoteTraceEnvAndErrors(t *testing.T) {
	t.Setenv(scorep.EnvTraceSink, "ftp://nope")
	if _, err := scorep.NewSessionFromEnv(); err == nil {
		t.Fatal("malformed SCOREP_TRACE_SINK accepted")
	}
	t.Setenv(scorep.EnvTraceSink, "")

	// Nobody listens here: the lazy connect exhausts its retries and
	// End reports it; the workload itself must still complete.
	par := scorep.RegisterRegion("fe.parallel", "fleet_test.go", 20, scorep.RegionParallel)
	task := scorep.RegisterRegion("fe.task", "fleet_test.go", 21, scorep.RegionTask)
	tw := scorep.RegisterRegion("fe.taskwait", "fleet_test.go", 22, scorep.RegionTaskwait)
	sock := filepath.Join(t.TempDir(), "dead.sock")
	s := scorep.NewSession(scorep.WithRemoteTrace("unix://" + sock))
	fleetWorkload(s, 20, par, task, tw)
	if _, err := s.End(); err == nil {
		t.Fatal("End returned nil though the daemon never existed")
	}
}

// TestFleetDaemonRestartResume kills the in-process daemon mid-stream,
// restarts it over the same experiment directory and socket, and checks
// the session's stream resumes so that the sealed fleet experiment's
// analysis is reflect.DeepEqual-identical to an undisturbed run — the
// daemon-crash half of the fault matrix, end to end through the facade.
func TestFleetDaemonRestartResume(t *testing.T) {
	par := scorep.RegisterRegion("fr.parallel", "fleet_test.go", 30, scorep.RegionParallel)
	task := scorep.RegisterRegion("fr.task", "fleet_test.go", 31, scorep.RegionTask)
	tw := scorep.RegisterRegion("fr.taskwait", "fleet_test.go", 32, scorep.RegionTaskwait)

	// Undisturbed reference under the same deterministic clock.
	ref := scorep.NewSession(scorep.WithTracing(), scorep.WithoutProfiling(),
		scorep.WithClock(countingClock()))
	fleetWorkload(ref, 200, par, task, tw)
	fleetWorkload(ref, 200, par, task, tw)
	refRes, err := ref.End()
	if err != nil {
		t.Fatal(err)
	}
	want := refRes.TraceAnalysis()

	base := t.TempDir()
	dir := filepath.Join(base, "exp")
	sock := filepath.Join(base, "d.sock")
	startDaemon := func() (*scorep.TraceSinkServer, chan struct{}) {
		srv, err := scorep.NewTraceSinkServer(dir)
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("unix", sock)
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			_ = srv.Serve(ln)
		}()
		return srv, done
	}

	srv1, done1 := startDaemon()
	s := scorep.NewSession(
		scorep.WithRemoteTrace("unix://"+sock),
		scorep.WithRemoteTraceStream("survivor"),
		scorep.WithRemoteTraceReconnect(50, 5*time.Millisecond, 20*time.Second),
		scorep.WithoutProfiling(),
		scorep.WithClock(countingClock()))
	fleetWorkload(s, 200, par, task, tw)

	// Kill the daemon like a crash: no drain, connections severed.
	if err := srv1.Shutdown(0); err != nil {
		t.Fatal(err)
	}
	<-done1
	srv2, done2 := startDaemon()

	fleetWorkload(s, 200, par, task, tw)
	res, err := s.End()
	if err != nil {
		t.Fatal(err)
	}
	if res.RemoteGapBytes() != 0 {
		t.Fatalf("stream gapped %d bytes; the replay window must cover a fresh daemon", res.RemoteGapBytes())
	}
	if fb := res.RemoteFallback(); fb != nil {
		t.Fatalf("stream degraded to fallback %+v instead of resuming", fb)
	}

	if err := srv2.Close(); err != nil {
		t.Fatal(err)
	}
	<-done2
	var shards []scorep.TraceShard
	for _, st := range srv2.Streams() {
		shards = append(shards, scorep.TraceShard{
			File: st.File, Stream: st.ID, Bytes: st.Bytes,
			DroppedEvents: st.DroppedEvents, GapBytes: st.GapBytes,
			Resumes: st.Resumes, Complete: st.Complete,
		})
	}
	if err := scorep.SaveFleetExperiment(dir, time.Second, shards); err != nil {
		t.Fatal(err)
	}

	exp, err := scorep.OpenExperiment(dir)
	if err != nil {
		t.Fatal(err)
	}
	got := exp.TraceShards()
	if len(got) != 1 || !got[0].Complete || got[0].GapBytes != 0 {
		t.Fatalf("TraceShards = %+v, want one complete gapless shard", got)
	}
	a, err := exp.ShardTraceAnalysis(0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, a) {
		t.Fatalf("resumed shard's analysis differs from the undisturbed run:\nwant %+v\ngot  %+v", want, a)
	}
	if len(exp.Warnings()) != 0 {
		t.Fatalf("resumed fleet produced warnings: %v", exp.Warnings())
	}
}

// TestFleetDaemonSIGKILLRestart is the real-process variant: it builds
// cmd/scorep-daemon, SIGKILLs the running daemon mid-stream, restarts
// it over the same experiment directory, and checks the session resumes
// and the daemon's own sealed meta.json reports a complete, gapless,
// resumed shard whose analysis matches an undisturbed run.
func TestFleetDaemonSIGKILLRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs a real daemon process")
	}
	par := scorep.RegisterRegion("fk.parallel", "fleet_test.go", 40, scorep.RegionParallel)
	task := scorep.RegisterRegion("fk.task", "fleet_test.go", 41, scorep.RegionTask)
	tw := scorep.RegisterRegion("fk.taskwait", "fleet_test.go", 42, scorep.RegionTaskwait)

	ref := scorep.NewSession(scorep.WithTracing(), scorep.WithoutProfiling(),
		scorep.WithClock(countingClock()))
	fleetWorkload(ref, 200, par, task, tw)
	fleetWorkload(ref, 200, par, task, tw)
	refRes, err := ref.End()
	if err != nil {
		t.Fatal(err)
	}
	want := refRes.TraceAnalysis()

	base := t.TempDir()
	bin := filepath.Join(base, "scorep-daemon")
	build := exec.Command("go", "build", "-o", bin, "repro/cmd/scorep-daemon")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building scorep-daemon: %v\n%s", err, out)
	}
	dir := filepath.Join(base, "exp")
	sock := filepath.Join(base, "d.sock")
	startDaemon := func(extra ...string) *exec.Cmd {
		args := append([]string{"-listen", "unix://" + sock, "-exp", dir, "-quiet"}, extra...)
		cmd := exec.Command(bin, args...)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		return cmd
	}

	d1 := startDaemon()
	s := scorep.NewSession(
		scorep.WithRemoteTrace("unix://"+sock),
		scorep.WithRemoteTraceStream("survivor"),
		scorep.WithRemoteTraceReconnect(50, 5*time.Millisecond, 20*time.Second),
		scorep.WithoutProfiling(),
		scorep.WithClock(countingClock()))
	fleetWorkload(s, 200, par, task, tw)

	// The shard file appears once the handshake registered the stream —
	// only then is a SIGKILL a genuine mid-stream crash.
	shard := filepath.Join(dir, "trace-survivor.otf2")
	for deadline := time.Now().Add(10 * time.Second); ; {
		if _, err := os.Stat(shard); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stream never reached the daemon")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := d1.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_ = d1.Wait()

	// Restart over the same experiment directory; -streams 1 makes the
	// daemon seal the fleet experiment and exit once the stream ends.
	d2 := startDaemon("-streams", "1")
	fleetWorkload(s, 200, par, task, tw)
	res, err := s.End()
	if err != nil {
		t.Fatal(err)
	}
	if res.RemoteResumes() == 0 {
		t.Fatal("stream never resumed though the daemon was SIGKILLed mid-stream")
	}
	if res.RemoteGapBytes() != 0 || res.RemoteFallback() != nil {
		t.Fatalf("stream lost data: gap=%d fallback=%+v", res.RemoteGapBytes(), res.RemoteFallback())
	}
	if err := d2.Wait(); err != nil {
		t.Fatalf("restarted daemon exited with %v", err)
	}

	exp, err := scorep.OpenExperiment(dir)
	if err != nil {
		t.Fatal(err)
	}
	got := exp.TraceShards()
	if len(got) != 1 || !got[0].Complete || got[0].GapBytes != 0 || got[0].Resumes == 0 {
		t.Fatalf("TraceShards = %+v, want one complete gapless resumed shard", got)
	}
	a, err := exp.ShardTraceAnalysis(0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, a) {
		t.Fatalf("resumed shard's analysis differs from the undisturbed run:\nwant %+v\ngot  %+v", want, a)
	}
}
