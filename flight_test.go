package scorep_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	scorep "repro"
	"repro/internal/faultinject"
)

// newFlightSession creates a session with a small flight ring and the
// dump signal disabled, so tests control every trigger themselves.
func newFlightSession(t *testing.T, extra ...scorep.Option) *scorep.Session {
	t.Helper()
	opts := append([]scorep.Option{
		scorep.WithFlightRecorder(2),
		scorep.WithFlightChunkEvents(32),
		scorep.WithDumpSignal(nil),
	}, extra...)
	return scorep.NewSession(opts...)
}

func TestSessionFlightRecorderDumpIsAnalyzable(t *testing.T) {
	s := newFlightSession(t)
	runSessionWorkload(t, s, "fd", 2, 200) // plenty of eviction for ring 2x32

	live := s.FlightRecorderStats()
	if !live.Enabled || live.RingChunks != 2 || live.ChunkEvents != 32 {
		t.Fatalf("live stats = %+v, want enabled 2x32 ring", live)
	}
	if live.DroppedEvents == 0 || live.DroppedChunks == 0 {
		t.Fatalf("workload did not overflow the ring: %+v", live)
	}

	dir := filepath.Join(t.TempDir(), "dump")
	got, err := s.DumpFlightRecorder(dir)
	if err != nil {
		t.Fatalf("DumpFlightRecorder: %v", err)
	}
	if got != dir {
		t.Fatalf("dump dir = %q, want %q", got, dir)
	}

	// The dump is a complete experiment: metadata, trace, analysis and
	// bottleneck paths all work, and the accounting matches the live view.
	exp, err := scorep.OpenExperiment(dir)
	if err != nil {
		t.Fatalf("OpenExperiment on dump: %v", err)
	}
	fr := exp.Meta.FlightRecorder
	if fr == nil {
		t.Fatal("dump meta.json has no flightRecorder accounting")
	}
	if fr.Trigger != "api" || fr.Partial {
		t.Fatalf("dump accounting = %+v, want trigger=api, complete", fr)
	}
	if fr.DroppedEvents < live.DroppedEvents || fr.RetainedEvents == 0 {
		t.Fatalf("dump counts %+v inconsistent with live %+v", fr, live)
	}
	tr, err := exp.Trace()
	if err != nil {
		t.Fatalf("Trace: %v", err)
	}
	if tr.NumEvents() != fr.RetainedEvents {
		t.Fatalf("archive holds %d events, accounting says %d", tr.NumEvents(), fr.RetainedEvents)
	}
	if a, err := exp.TraceAnalysis(); err != nil || a == nil {
		t.Fatalf("TraceAnalysis: %v", err)
	}
	if b, err := exp.Bottlenecks(); err != nil || b == nil {
		t.Fatalf("Bottlenecks: %v", err)
	}
	if w := exp.Warnings(); len(w) != 0 {
		t.Fatalf("complete dump produced warnings: %v", w)
	}

	// The dump did not disturb the session: it records and ends normally.
	runSessionWorkload(t, s, "fd2", 2, 8)
	res, err := s.End()
	if err != nil {
		t.Fatalf("End after dump: %v", err)
	}
	if res.FlightRecorder() == nil {
		t.Fatal("Results.FlightRecorder = nil for a flight session")
	}
}

func TestSessionFlightRecorderSavedExperiment(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "exp")
	s := newFlightSession(t, scorep.WithExperimentDirectory(dir))
	runSessionWorkload(t, s, "fs", 2, 200)
	res, err := s.End()
	if err != nil {
		t.Fatal(err)
	}
	fr := res.FlightRecorder()
	if fr == nil || fr.Trigger != "end" {
		t.Fatalf("Results.FlightRecorder = %+v, want trigger=end", fr)
	}
	if fr.DroppedEvents == 0 {
		t.Fatal("expected eviction in a 2x32 ring under 200 tasks")
	}
	exp, err := scorep.OpenExperiment(dir)
	if err != nil {
		t.Fatal(err)
	}
	mfr := exp.Meta.FlightRecorder
	if mfr == nil {
		t.Fatal("saved experiment meta has no flightRecorder accounting")
	}
	if mfr.DroppedEvents != fr.DroppedEvents || mfr.RetainedEvents != fr.RetainedEvents {
		t.Fatalf("meta accounting %+v != results accounting %+v", mfr, fr)
	}
	tr, err := exp.Trace()
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumEvents() != fr.RetainedEvents {
		t.Fatalf("archived window %d events, accounting says %d", tr.NumEvents(), fr.RetainedEvents)
	}
}

func TestSessionDumpOnPanicSalvagesWindow(t *testing.T) {
	s := newFlightSession(t)
	dir := filepath.Join(t.TempDir(), "crash")
	runSessionWorkload(t, s, "fp", 2, 200)
	before := s.FlightRecorderStats() // the workload is quiesced: these are the exact counts

	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Error("DumpOnPanic swallowed the panic")
			} else if r != "boom" {
				t.Errorf("re-panicked with %v, want the original value", r)
			}
		}()
		defer s.DumpOnPanic(dir)
		panic("boom")
	}()

	exp, err := scorep.OpenExperiment(dir)
	if err != nil {
		t.Fatalf("panic dump missing: %v", err)
	}
	fr := exp.Meta.FlightRecorder
	if fr == nil || fr.Trigger != "panic" {
		t.Fatalf("accounting = %+v, want trigger=panic", fr)
	}
	if fr.DroppedEvents != before.DroppedEvents || fr.DroppedChunks != before.DroppedChunks ||
		fr.RetainedEvents != before.RetainedEvents {
		t.Fatalf("panic dump counts %+v, want exactly the pre-panic state %+v", fr, before)
	}
	if b, err := exp.Bottlenecks(); err != nil || b == nil {
		t.Fatalf("bottleneck analysis of the crash window: %v", err)
	}
	if _, err := s.End(); err != nil {
		t.Fatal(err)
	}
}

func TestSessionFlightRecorderSignalDump(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "exp")
	s := scorep.NewSession(
		scorep.WithFlightRecorder(2),
		scorep.WithFlightChunkEvents(32),
		scorep.WithDumpSignal(syscall.SIGUSR2), // not the default, so a stray USR1 can't confuse the test
		scorep.WithExperimentDirectory(dir),
	)
	runSessionWorkload(t, s, "fg", 2, 50)
	if err := syscall.Kill(os.Getpid(), syscall.SIGUSR2); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	var st scorep.FlightRecorderStats
	for {
		st = s.FlightRecorderStats()
		if st.Dumps > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("signal did not trigger a dump within 10s")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.LastTrigger != "signal" {
		t.Fatalf("trigger = %q, want signal", st.LastTrigger)
	}
	exp, err := scorep.OpenExperiment(st.LastDumpDir)
	if err != nil {
		t.Fatalf("signal dump at %q unreadable: %v", st.LastDumpDir, err)
	}
	if !strings.HasPrefix(filepath.Base(st.LastDumpDir), "flight-") || filepath.Dir(st.LastDumpDir) != dir {
		t.Fatalf("signal dump landed at %q, want flight-NNN under %q", st.LastDumpDir, dir)
	}
	if exp.Meta.FlightRecorder == nil || exp.Meta.FlightRecorder.Trigger != "signal" {
		t.Fatalf("accounting = %+v", exp.Meta.FlightRecorder)
	}
	if _, err := s.End(); err != nil {
		t.Fatal(err)
	}
}

func TestSessionFlightRecorderBottleneckTrigger(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "exp")
	s := newFlightSession(t,
		scorep.WithExperimentDirectory(dir),
		// Severity bound 0: any finding at all trips the trigger.
		scorep.WithBottleneckTrigger(0, 5*time.Millisecond),
	)
	runSessionWorkload(t, s, "fb", 4, 100) // imbalanced: thread 0 creates all tasks
	deadline := time.Now().Add(10 * time.Second)
	for s.FlightRecorderStats().Dumps == 0 {
		if time.Now().After(deadline) {
			t.Fatal("bottleneck trigger did not fire within 10s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := s.FlightRecorderStats()
	if st.LastTrigger != "bottleneck" {
		t.Fatalf("trigger = %q, want bottleneck", st.LastTrigger)
	}
	exp, err := scorep.OpenExperiment(st.LastDumpDir)
	if err != nil {
		t.Fatalf("bottleneck dump unreadable: %v", err)
	}
	if exp.Meta.FlightRecorder.Trigger != "bottleneck" {
		t.Fatalf("accounting trigger = %q", exp.Meta.FlightRecorder.Trigger)
	}
	if _, err := s.End(); err != nil {
		t.Fatal(err)
	}
}

func TestSessionFlightRecorderHandler(t *testing.T) {
	s := newFlightSession(t)
	runSessionWorkload(t, s, "fh", 2, 100)
	srv := httptest.NewServer(s.FlightRecorderHandler())
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	var st scorep.FlightRecorderStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !st.Enabled || st.RetainedEvents == 0 {
		t.Fatalf("GET stats = %+v", st)
	}

	dir := filepath.Join(t.TempDir(), "httpdump")
	resp, err = http.PostForm(srv.URL, url.Values{"dir": {dir}})
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || out["dir"] != dir {
		t.Fatalf("POST = %d %v", resp.StatusCode, out)
	}
	exp, err := scorep.OpenExperiment(dir)
	if err != nil {
		t.Fatalf("HTTP dump unreadable: %v", err)
	}
	if exp.Meta.FlightRecorder.Trigger != "http" {
		t.Fatalf("trigger = %q, want http", exp.Meta.FlightRecorder.Trigger)
	}

	resp, err = http.Head(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("HEAD = %d, want 405", resp.StatusCode)
	}
	if _, err := s.End(); err != nil {
		t.Fatal(err)
	}
}

// TestSessionFlightArchiveDiskFull streams a dump onto a full fake disk:
// the error must surface, the written prefix must salvage, and the
// session must keep working as if nothing happened.
func TestSessionFlightArchiveDiskFull(t *testing.T) {
	s := newFlightSession(t)
	runSessionWorkload(t, s, "ff", 2, 200)

	path := filepath.Join(t.TempDir(), "partial.otf2")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	fw := faultinject.NewWriter(f, faultinject.CapacityBytes(512))
	werr := s.WriteFlightRecorderArchive(fw)
	f.Close()
	if werr == nil {
		t.Fatal("full-disk archive write did not surface an error")
	}

	// The intact prefix still opens and still carries its accounting.
	pst, err := scorep.StatTraceArchive(path)
	if err != nil {
		t.Fatalf("StatTraceArchive on salvaged prefix: %v", err)
	}
	if pst.Flight == nil {
		t.Fatal("salvaged prefix lost the flight accounting chunk")
	}

	// The session is unharmed: more recording, a healthy dump, a clean end.
	runSessionWorkload(t, s, "ff2", 2, 20)
	dir := filepath.Join(t.TempDir(), "ok")
	if _, err := s.DumpFlightRecorder(dir); err != nil {
		t.Fatalf("dump after disk-full incident: %v", err)
	}
	if _, err := s.End(); err != nil {
		t.Fatal(err)
	}
}

func TestSessionWithoutFlightRecorder(t *testing.T) {
	s := scorep.NewSession()
	if st := s.FlightRecorderStats(); st.Enabled {
		t.Fatal("plain session claims a flight recorder")
	}
	if _, err := s.DumpFlightRecorder(t.TempDir()); err == nil {
		t.Fatal("DumpFlightRecorder on a plain session did not error")
	}
	// DumpOnPanic must still re-panic even without a recorder.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("DumpOnPanic swallowed the panic without a recorder")
			}
		}()
		defer s.DumpOnPanic("")
		panic("plain")
	}()
	res, err := s.End()
	if err != nil {
		t.Fatal(err)
	}
	if res.FlightRecorder() != nil {
		t.Fatal("plain run reports flight accounting")
	}
}

func TestNewSessionFromEnvFlightRecorder(t *testing.T) {
	t.Setenv(scorep.EnvFlightRecorder, "16")
	t.Setenv(scorep.EnvDumpSignal, "none")
	s, err := scorep.NewSessionFromEnv()
	if err != nil {
		t.Fatal(err)
	}
	st := s.FlightRecorderStats()
	if !st.Enabled || st.RingChunks != 16 {
		t.Fatalf("stats = %+v, want a 16-chunk ring from %s", st, scorep.EnvFlightRecorder)
	}
	if !s.Tracing() {
		t.Error("flight recorder implies tracing")
	}
	if _, err := s.End(); err != nil {
		t.Fatal(err)
	}
}

func TestNewSessionFromEnvFlightRecorderSpellings(t *testing.T) {
	for _, tc := range []struct {
		val     string
		enabled bool
		ring    int
	}{
		{"true", true, scorep.DefaultFlightRingChunks},
		{"yes", true, scorep.DefaultFlightRingChunks},
		{"1", true, scorep.DefaultFlightRingChunks}, // boolean spelling, like Score-P's
		{"8", true, 8},
		{"false", false, 0},
		{"off", false, 0},
		{"0", false, 0},
	} {
		t.Run(tc.val, func(t *testing.T) {
			t.Setenv(scorep.EnvFlightRecorder, tc.val)
			t.Setenv(scorep.EnvDumpSignal, "none")
			s, err := scorep.NewSessionFromEnv()
			if err != nil {
				t.Fatal(err)
			}
			st := s.FlightRecorderStats()
			if st.Enabled != tc.enabled {
				t.Fatalf("%s=%q: enabled = %v, want %v", scorep.EnvFlightRecorder, tc.val, st.Enabled, tc.enabled)
			}
			if tc.enabled && st.RingChunks != tc.ring {
				t.Fatalf("%s=%q: ring = %d, want %d", scorep.EnvFlightRecorder, tc.val, st.RingChunks, tc.ring)
			}
			if _, err := s.End(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestNewSessionFromEnvFlightRecorderOverridesBase(t *testing.T) {
	t.Setenv(scorep.EnvFlightRecorder, "off")
	t.Setenv(scorep.EnvDumpSignal, "none")
	s, err := scorep.NewSessionFromEnv(scorep.WithFlightRecorder(4))
	if err != nil {
		t.Fatal(err)
	}
	if s.FlightRecorderStats().Enabled {
		t.Errorf("%s=off must override a base WithFlightRecorder", scorep.EnvFlightRecorder)
	}
	if _, err := s.End(); err != nil {
		t.Fatal(err)
	}
}

func TestNewSessionFromEnvRejectsBadFlightSettings(t *testing.T) {
	for _, tc := range []struct{ env, val string }{
		{scorep.EnvFlightRecorder, "banana"},
		{scorep.EnvFlightRecorder, "-3"},
		{scorep.EnvDumpSignal, "SIGLOL"},
		{scorep.EnvDumpSignal, "17"},
	} {
		t.Run(tc.env+"="+tc.val, func(t *testing.T) {
			t.Setenv(tc.env, tc.val)
			if _, err := scorep.NewSessionFromEnv(); err == nil {
				t.Fatalf("%s=%q accepted, want an error", tc.env, tc.val)
			} else if !strings.Contains(err.Error(), tc.env) {
				t.Fatalf("error %q does not name the variable", err)
			}
		})
	}
}

func TestNewSessionFromEnvDumpSignalSpellings(t *testing.T) {
	for _, val := range []string{"USR2", "SIGUSR2", "usr2", "sigusr2"} {
		t.Run(val, func(t *testing.T) {
			t.Setenv(scorep.EnvFlightRecorder, "4")
			t.Setenv(scorep.EnvDumpSignal, val)
			s, err := scorep.NewSessionFromEnv()
			if err != nil {
				t.Fatalf("%s=%q rejected: %v", scorep.EnvDumpSignal, val, err)
			}
			if _, err := s.End(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
