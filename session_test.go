package scorep_test

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	scorep "repro"
)

// runSessionWorkload executes a small deterministic task workload (one
// parallel region, tasks tasks of one construct created by thread 0) on
// the session's runtime.
func runSessionWorkload(t *testing.T, s *scorep.Session, prefix string, threads, tasks int) {
	t.Helper()
	par := scorep.RegisterRegion(prefix+".parallel", "session_test.go", 1, scorep.RegionParallel)
	task := scorep.RegisterRegion(prefix+".task", "session_test.go", 2, scorep.RegionTask)
	tw := scorep.RegisterRegion(prefix+".taskwait", "session_test.go", 3, scorep.RegionTaskwait)
	fn := scorep.RegisterRegion(prefix+".helper", "session_test.go", 4, scorep.RegionFunction)
	s.Parallel(threads, par, func(th *scorep.Thread) {
		if th.ID != 0 {
			return
		}
		for i := 0; i < tasks; i++ {
			th.NewTask(task, func(c *scorep.Thread) {
				scorep.InstrumentFunction(c, fn, func() {
					x := 0
					for j := 0; j < 2000; j++ {
						x += j
					}
					_ = x
				})
			})
		}
		th.Taskwait(tw)
	})
}

func TestSessionDefaults(t *testing.T) {
	s := scorep.NewSession()
	if !s.Profiling() {
		t.Error("profiling should default to on (SCOREP_ENABLE_PROFILING=true)")
	}
	if s.Tracing() {
		t.Error("tracing should default to off (SCOREP_ENABLE_TRACING=false)")
	}
	if s.Scheduler() != scorep.SchedCentralQueue {
		t.Errorf("scheduler = %v, want central queue default", s.Scheduler())
	}
	if s.ExperimentDir() != "" {
		t.Errorf("experiment dir = %q, want none", s.ExperimentDir())
	}
}

func TestSessionProfilingRun(t *testing.T) {
	s := scorep.NewSession(scorep.WithScheduler(scorep.SchedWorkStealing))
	runSessionWorkload(t, s, "sp", 2, 12)
	res, err := s.End()
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report()
	if rep == nil {
		t.Fatal("profiling session returned no report")
	}
	tree := rep.TaskTree("sp.task")
	if tree == nil || tree.Dur.Count != 12 {
		t.Fatalf("task tree = %+v, want 12 instances", tree)
	}
	if res.Trace() != nil {
		t.Error("non-tracing session returned a trace")
	}
	if res.TraceAnalysis() != nil {
		t.Error("non-tracing session returned a trace analysis")
	}
	if got := res.TeamStats().TasksCreated; got != 12 {
		t.Errorf("TeamStats.TasksCreated = %d, want 12", got)
	}
	if len(res.Locations()) != 2 {
		t.Errorf("locations = %d, want 2", len(res.Locations()))
	}
	if res.WallTime() <= 0 {
		t.Error("wall time not measured")
	}
	if res.Findings() == nil {
		t.Error("findings should be non-nil for a profiled run (possibly empty)")
	}

	// End is idempotent and returns the same Results.
	res2, err := s.End()
	if err != nil || res2 != res {
		t.Errorf("second End() = (%p, %v), want same results (%p, nil)", res2, err, res)
	}
}

func TestSessionTracing(t *testing.T) {
	s := scorep.NewSession(scorep.WithTracing())
	runSessionWorkload(t, s, "st", 2, 16)
	res, err := s.End()
	if err != nil {
		t.Fatal(err)
	}
	if res.Report() == nil {
		t.Error("WithTracing should not disable the default profiling")
	}
	tr := res.Trace()
	if tr == nil || tr.NumEvents() == 0 {
		t.Fatal("tracing session recorded no events")
	}
	a := res.TraceAnalysis()
	if a == nil || a.TaskExecution.Count != 16 {
		t.Fatalf("trace analysis fragments = %+v, want 16", a)
	}
	if res.TraceAnalysis() != a {
		t.Error("TraceAnalysis not cached")
	}
}

// TestSessionAnalysisParallelism checks the analysis-parallelism knob
// changes nothing but the worker count: the sharded analysis of a
// session's trace is identical to the sequential one.
func TestSessionAnalysisParallelism(t *testing.T) {
	s := scorep.NewSession(scorep.WithTracing(), scorep.WithAnalysisParallelism(4))
	runSessionWorkload(t, s, "sap", 2, 24)
	res, err := s.End()
	if err != nil {
		t.Fatal(err)
	}
	a := res.TraceAnalysis()
	if a == nil || a.TaskExecution.Count != 24 {
		t.Fatalf("parallel trace analysis = %+v, want 24 task fragments", a)
	}
	if want := scorep.AnalyzeTrace(res.Trace()); !reflect.DeepEqual(want, a) {
		t.Errorf("parallel analysis diverges from sequential:\n got %+v\nwant %+v", a, want)
	}
	if got := scorep.AnalyzeTraceParallel(res.Trace(), 3); !reflect.DeepEqual(got, a) {
		t.Errorf("AnalyzeTraceParallel diverges at a different worker count")
	}
}

func TestSessionWithoutProfiling(t *testing.T) {
	s := scorep.NewSession(scorep.WithoutProfiling())
	runSessionWorkload(t, s, "su", 2, 4)
	res, err := s.End()
	if err != nil {
		t.Fatal(err)
	}
	if res.Report() != nil || res.Locations() != nil || res.Findings() != nil {
		t.Error("uninstrumented session produced profiling artifacts")
	}
}

func TestSessionFilter(t *testing.T) {
	s := scorep.NewSession(scorep.WithFilter("sf.helper"))
	runSessionWorkload(t, s, "sf", 2, 8)
	res, err := s.End()
	if err != nil {
		t.Fatal(err)
	}
	tree := res.Report().TaskTree("sf.task")
	if tree == nil {
		t.Fatal("no task tree")
	}
	if tree.Find("sf.helper") != nil {
		t.Error("filter did not exclude sf.helper from the profile")
	}
}

// countingListener counts Enter events, standing in for a user-supplied
// extra listener.
type countingListener struct{ enters atomic.Int64 }

func (c *countingListener) ThreadBegin(*scorep.Thread)                     {}
func (c *countingListener) ThreadEnd(*scorep.Thread)                       {}
func (c *countingListener) Enter(*scorep.Thread, *scorep.Region)           { c.enters.Add(1) }
func (c *countingListener) Exit(*scorep.Thread, *scorep.Region)            {}
func (c *countingListener) TaskCreateBegin(*scorep.Thread, *scorep.Region) {}
func (c *countingListener) TaskCreateEnd(*scorep.Thread, *scorep.Task)     {}
func (c *countingListener) TaskBegin(*scorep.Thread, *scorep.Task)         {}
func (c *countingListener) TaskEnd(*scorep.Thread, *scorep.Task)           {}
func (c *countingListener) TaskSwitch(t *scorep.Thread, tk *scorep.Task)   {}

func TestSessionWithListener(t *testing.T) {
	extra := &countingListener{}
	s := scorep.NewSession(scorep.WithListener(extra))
	runSessionWorkload(t, s, "sl", 2, 8)
	if _, err := s.End(); err != nil {
		t.Fatal(err)
	}
	if extra.enters.Load() == 0 {
		t.Error("extra listener saw no Enter events")
	}
}

func TestSessionStreamingTrace(t *testing.T) {
	var buf bytes.Buffer
	aw := scorep.NewTraceArchiveWriter(&buf)
	s := scorep.NewSession(scorep.WithoutProfiling(), scorep.WithStreamingTrace(aw, 64))
	runSessionWorkload(t, s, "ss", 2, 32)
	res, err := s.End()
	if err != nil {
		t.Fatal(err)
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}
	if res.Trace() != nil {
		t.Error("streaming session must not return an in-memory trace")
	}
	tr, err := scorep.ReadTraceArchive(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumEvents() == 0 {
		t.Error("streamed archive holds no events")
	}
}

// failingSink rejects every chunk, modelling a full or broken disk.
type failingSink struct{}

func (failingSink) WriteEvents(int, []scorep.TraceEvent) error {
	return errors.New("disk full")
}

func TestSessionStreamingSinkErrorSurfacesAtEnd(t *testing.T) {
	s := scorep.NewSession(scorep.WithoutProfiling(), scorep.WithStreamingTrace(failingSink{}, 8))
	runSessionWorkload(t, s, "se", 2, 64)
	res, err := s.End()
	if err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("End() error = %v, want the latched sink error", err)
	}
	if res == nil {
		t.Fatal("Results must be valid even when End errors")
	}
}

func TestNewSessionFromEnv(t *testing.T) {
	t.Setenv(scorep.EnvEnableProfiling, "no")
	t.Setenv(scorep.EnvEnableTracing, "yes")
	t.Setenv(scorep.EnvTaskScheduler, "work-stealing")
	t.Setenv(scorep.EnvFiltering, "noisy_*, tiny_helper")
	dir := t.TempDir() + "/scorep-env"
	t.Setenv(scorep.EnvExperimentDirectory, dir)

	s, err := scorep.NewSessionFromEnv()
	if err != nil {
		t.Fatal(err)
	}
	if s.Profiling() {
		t.Error("env disabled profiling, session still profiles")
	}
	if !s.Tracing() {
		t.Error("env enabled tracing, session does not trace")
	}
	if s.Scheduler() != scorep.SchedWorkStealing {
		t.Errorf("scheduler = %v, want work-stealing from env", s.Scheduler())
	}
	if s.ExperimentDir() != dir {
		t.Errorf("experiment dir = %q, want %q", s.ExperimentDir(), dir)
	}

	runSessionWorkload(t, s, "sv", 2, 8)
	if _, err := s.End(); err != nil {
		t.Fatal(err)
	}
	exp, err := scorep.OpenExperiment(dir)
	if err != nil {
		t.Fatalf("End did not save the experiment to %s: %v", scorep.EnvExperimentDirectory, err)
	}
	if exp.Meta.HasProfile {
		t.Error("experiment claims a profile for a profiling-disabled run")
	}
	if !exp.Meta.HasTrace {
		t.Error("experiment misses the trace of a tracing run")
	}
}

func TestNewSessionFromEnvOverridesBaseOptions(t *testing.T) {
	t.Setenv(scorep.EnvTaskScheduler, "central-queue")
	s, err := scorep.NewSessionFromEnv(scorep.WithScheduler(scorep.SchedWorkStealing))
	if err != nil {
		t.Fatal(err)
	}
	if s.Scheduler() != scorep.SchedCentralQueue {
		t.Errorf("scheduler = %v, environment must override base options", s.Scheduler())
	}
}

func TestNewSessionFromEnvDisablesTracing(t *testing.T) {
	t.Setenv(scorep.EnvEnableTracing, "false")
	s, err := scorep.NewSessionFromEnv(scorep.WithTracing())
	if err != nil {
		t.Fatal(err)
	}
	if s.Tracing() {
		t.Error("SCOREP_ENABLE_TRACING=false must override a base WithTracing")
	}
}

func TestNewSessionFromEnvKeepsStreamingSink(t *testing.T) {
	t.Setenv(scorep.EnvEnableTracing, "on")
	var buf bytes.Buffer
	aw := scorep.NewTraceArchiveWriter(&buf)
	s, err := scorep.NewSessionFromEnv(scorep.WithoutProfiling(), scorep.WithStreamingTrace(aw, 16))
	if err != nil {
		t.Fatal(err)
	}
	runSessionWorkload(t, s, "sk", 2, 16)
	res, err := s.End()
	if err != nil {
		t.Fatal(err)
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}
	if res.Trace() != nil {
		t.Error("env tracing=true dropped the programmatic streaming sink (in-memory trace returned)")
	}
	tr, err := scorep.ReadTraceArchive(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumEvents() == 0 {
		t.Error("streaming sink received no events under env-enabled tracing")
	}
}

func TestNewSessionFromEnvFilterReplacesBase(t *testing.T) {
	// An empty SCOREP_FILTERING disables compiled-in filters entirely.
	t.Setenv(scorep.EnvFiltering, "")
	s, err := scorep.NewSessionFromEnv(scorep.WithFilter("sw.helper"))
	if err != nil {
		t.Fatal(err)
	}
	runSessionWorkload(t, s, "sw", 2, 8)
	res, err := s.End()
	if err != nil {
		t.Fatal(err)
	}
	if res.Report().TaskTree("sw.task").Find("sw.helper") == nil {
		t.Error("empty SCOREP_FILTERING must clear compiled-in filter patterns")
	}

	// A non-empty value replaces (not merges with) the base patterns.
	t.Setenv(scorep.EnvFiltering, "sx.helper")
	s2, err := scorep.NewSessionFromEnv(scorep.WithFilter("unrelated_*"))
	if err != nil {
		t.Fatal(err)
	}
	runSessionWorkload(t, s2, "sx", 2, 8)
	res2, err := s2.End()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Report().TaskTree("sx.task").Find("sx.helper") != nil {
		t.Error("SCOREP_FILTERING patterns were not applied")
	}
}

func TestNewSessionFromEnvRejectsBadValues(t *testing.T) {
	t.Setenv(scorep.EnvEnableProfiling, "maybe")
	if _, err := scorep.NewSessionFromEnv(); err == nil {
		t.Errorf("%s=maybe accepted", scorep.EnvEnableProfiling)
	}
	t.Setenv(scorep.EnvEnableProfiling, "true")
	t.Setenv(scorep.EnvTaskScheduler, "fifo")
	if _, err := scorep.NewSessionFromEnv(); err == nil {
		t.Errorf("%s=fifo accepted", scorep.EnvTaskScheduler)
	}
}
