package scorep

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/bottleneck"
	"repro/internal/clock"
	"repro/internal/measure"
	"repro/internal/omp"
	"repro/internal/region"
	"repro/internal/sink"
	"repro/internal/trace"
)

// Session is one configured measurement environment — the role the
// Score-P runtime plays for an instrumented program run. NewSession
// wires the requested subsystems (profiling, tracing, filtering) to a
// task runtime; the measured code runs through Session.Parallel (or
// Session.Runtime for the full runtime surface); Session.End finalizes
// all of them at once and hands back a Results value from which the
// profile report, the event trace, the trace-derived metrics and the
// automatic diagnosis are available consistently.
//
//	s := scorep.NewSession(scorep.WithTracing())
//	s.Parallel(4, par, func(t *scorep.Thread) { ... })
//	res, err := s.End()
//	res.Report()        // aggregated call-path profile
//	res.TraceAnalysis() // dispatch latency, management/execution ratio
//	res.SaveExperiment("scorep-run") // the on-disk experiment archive
//
// A Session is for one run: End is idempotent but the session must not
// record further work after it. The pieces it wires (NewMeasurement,
// NewTraceRecorder, NewTee, NewRuntime, ...) remain exported as the
// power-user layer for custom setups.
type Session struct {
	cfg sessionConfig
	rt  *Runtime
	m   *Measurement
	rec *TraceRecorder

	// net is the remote trace sink client of a WithRemoteTrace session
	// (owned by the session: End closes it); netErr records a remote
	// sink that could not even be constructed (malformed address).
	net    *sink.Client
	netErr error

	// flight holds the dump/trigger machinery of a WithFlightRecorder
	// session (see flight.go), nil otherwise.
	flight *flightState

	started time.Time

	mu      sync.Mutex
	results *Results
	endErr  error
}

// NewSession creates a measurement environment from functional options.
// With no options it profiles and does not trace — Score-P's defaults.
// See NewSessionFromEnv for the environment-variable-driven variant.
func NewSession(opts ...Option) *Session {
	cfg := defaultConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	clk := cfg.clk
	if clk == nil {
		clk = clock.NewSystem()
	}

	s := &Session{started: time.Now()}
	if cfg.tracing && cfg.remoteAddr != "" && cfg.streamingSink == nil {
		// Remote tracing: the streaming sink is a network client
		// encoding through the same per-thread archive-writer path a
		// file sink uses. Dial only rejects malformed addresses (the
		// connection itself is lazy); NewSession cannot return an
		// error, so that failure is latched and surfaced at End, with
		// tracing disabled rather than silently recorded into nothing.
		var copts []sink.ClientOption
		if cfg.remoteStream != "" {
			copts = append(copts, sink.WithStreamID(cfg.remoteStream))
		}
		if r := cfg.remoteRetry; r != nil {
			copts = append(copts, sink.WithDialRetry(r.attempts, r.backoff))
		}
		if r := cfg.remoteReconnect; r != nil {
			budget := r.budget
			if budget <= 0 {
				budget = sink.DefaultReconnectBudget
			}
			copts = append(copts, sink.WithReconnect(r.attempts, r.backoff, budget))
		}
		if path := resolveRemoteFallback(&cfg); path != "" {
			copts = append(copts, sink.WithFallbackArchive(path))
		}
		cl, err := sink.Dial(cfg.remoteAddr, copts...)
		if err != nil {
			s.netErr = fmt.Errorf("remote trace sink %s: %w", cfg.remoteAddr, err)
			cfg.tracing = false
		} else {
			s.net = cl
			cfg.streamingSink = cl
		}
	}
	s.cfg = cfg
	var listeners []Listener
	if cfg.profiling {
		s.m = measure.NewWithClock(clk, region.Default)
		var l Listener = s.m
		if len(cfg.filters) > 0 {
			l = measure.NewFilter(s.m, cfg.filters...)
		}
		listeners = append(listeners, l)
	}
	if cfg.tracing {
		switch {
		case cfg.flightRing > 0:
			s.rec = trace.NewFlightRecorder(clk, cfg.flightRing, cfg.flightChunk)
		case cfg.streamingSink != nil:
			s.rec = trace.NewStreamingRecorder(clk, cfg.streamingSink, cfg.streamingChunk)
		default:
			s.rec = trace.NewRecorder(clk)
		}
		listeners = append(listeners, s.rec)
	}
	listeners = append(listeners, cfg.extra...)

	var l Listener
	switch len(listeners) {
	case 0:
		// Uninstrumented: the runtime skips all event emission.
	case 1:
		l = listeners[0]
	default:
		l = trace.NewTee(listeners...)
	}
	s.rt = omp.NewRuntime(l)
	s.rt.Sched = cfg.sched
	if s.rec != nil && s.rec.FlightEnabled() {
		s.flight = newFlightState(s)
	}
	return s
}

// resolveRemoteFallback maps the tri-state fallback configuration to a
// concrete path: an explicit WithRemoteTraceFallback wins (empty
// disables); the default is <experiment dir>/fallback.otf2 when an
// experiment directory is configured, otherwise no fallback. The
// fallback file is deliberately not named trace-*.otf2, so a fleet
// directory's shard glob never picks it up as a daemon shard.
func resolveRemoteFallback(cfg *sessionConfig) string {
	if cfg.remoteFallback != nil {
		return *cfg.remoteFallback
	}
	if cfg.expDir != "" {
		return filepath.Join(cfg.expDir, "fallback.otf2")
	}
	return ""
}

// Runtime returns the session's task runtime, the execution engine the
// measured code runs on.
func (s *Session) Runtime() *Runtime { return s.rt }

// Parallel runs a parallel region on the session's runtime — shorthand
// for s.Runtime().Parallel.
func (s *Session) Parallel(n int, r *Region, body func(t *Thread)) {
	s.rt.Parallel(n, r, body)
}

// Profiling reports whether the session profiles.
func (s *Session) Profiling() bool { return s.cfg.profiling }

// Tracing reports whether the session records an event trace.
func (s *Session) Tracing() bool { return s.cfg.tracing }

// Scheduler returns the configured task scheduler.
func (s *Session) Scheduler() SchedulerKind { return s.cfg.sched }

// ExperimentDir returns the experiment archive directory End saves to,
// or "" when no directory is configured.
func (s *Session) ExperimentDir() string { return s.cfg.expDir }

// RemoteTraceSink returns the remote sink client of a WithRemoteTrace
// session (for inspecting Err and the backpressure drop count), or nil.
// The session owns the client; End closes it.
func (s *Session) RemoteTraceSink() *TraceSinkClient { return s.net }

// End finalizes the measurement environment: it closes the profiling
// locations, flushes and detaches the trace recorder, and captures the
// runtime's scheduler statistics. The returned Results exposes every
// product of the run; calling End again returns the same Results.
//
// The error reports a streaming-trace sink failure or, when an
// experiment directory is configured (WithExperimentDirectory or
// SCOREP_EXPERIMENT_DIRECTORY), a failure to save the experiment
// archive. The Results is valid even when err != nil.
func (s *Session) End() (*Results, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.results != nil {
		return s.results, s.endErr
	}

	wall := time.Since(s.started)
	if s.m != nil {
		s.m.Finish()
	}
	var tr *Trace
	var err error
	var flightStats *trace.FlightStats
	if s.rec != nil {
		if s.flight != nil {
			// Flight mode: stop the dump triggers, then take the final
			// window with its exactly matching eviction accounting.
			s.flight.stop()
			ftr, fst := s.rec.FlightSnapshot()
			tr, flightStats = ftr, &fst
		} else {
			tr = s.rec.Finish()
		}
		if s.cfg.streamingSink != nil {
			// Streaming mode: the recording lives in the sink; the
			// returned trace is empty by contract.
			tr = nil
			err = s.rec.Err()
		}
	}
	if s.net != nil {
		// Close the remote stream: flush the archive tail, send the
		// end-of-stream frame and wait for the daemon's seal ack. The
		// recorder latches the client's WriteEvents error, so skip a
		// Close error that merely repeats it.
		if cerr := s.net.Close(); cerr != nil && (err == nil || err.Error() != cerr.Error()) {
			err = errors.Join(err, fmt.Errorf("remote trace sink: %w", cerr))
		}
	}
	if s.netErr != nil {
		err = errors.Join(err, s.netErr)
	}

	s.results = &Results{
		cfg:         s.cfg,
		m:           s.m,
		trace:       tr,
		stats:       s.rt.LastTeamStats(),
		wall:        wall,
		flightStats: flightStats,
	}
	if s.net != nil {
		// Surface the stream's fate into the results (and thereby the
		// experiment's meta.json): resumes survived, bytes lost to an
		// unresumable gap, and the local spill the stream degraded to.
		s.results.remoteResumes = s.net.Resumes()
		s.results.remoteGapBytes = s.net.GapBytes()
		if path, start, reason, ok := s.net.Fallback(); ok {
			info := &RemoteFallbackInfo{File: path, StartOffset: start}
			if reason != nil {
				info.Reason = reason.Error()
			}
			s.results.remoteFallback = info
		}
	}
	if s.cfg.expDir != "" {
		if serr := s.results.SaveExperiment(s.cfg.expDir); serr != nil {
			err = errors.Join(err, serr)
		}
	}
	s.endErr = err
	return s.results, err
}

// Results exposes everything one measured run produced. All derived
// values (report, findings, trace analysis) are computed lazily on
// first use and cached, so repeated accessors observe consistent data.
// Results is safe for concurrent use.
type Results struct {
	cfg   sessionConfig
	m     *Measurement
	trace *Trace
	stats TeamStats
	wall  time.Duration

	// Remote-tracing stream fate (see Session.End): recorded in the
	// experiment's meta.json and exposed via RemoteFallback.
	remoteFallback *RemoteFallbackInfo
	remoteResumes  int64
	remoteGapBytes int64

	// Flight-recorder accounting of the final window (see Session.End):
	// recorded in the experiment's meta.json and its trace archive, and
	// exposed via FlightRecorder.
	flightStats *trace.FlightStats

	mu          sync.Mutex
	report      *Report
	analysis    *TraceAnalysis
	bottlenecks *BottleneckAnalysis
	findings    []Finding
	findingsSet bool
}

// Report returns the aggregated cross-thread profile, or nil when the
// session did not profile.
func (r *Results) Report() *Report {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.reportLocked()
}

func (r *Results) reportLocked() *Report {
	if r.report == nil && r.m != nil {
		r.report = AggregateReport(r.m.Locations())
	}
	return r.report
}

// Trace returns the recorded event trace, or nil when the session did
// not trace in memory (streaming traces live in their sink).
func (r *Results) Trace() *Trace { return r.trace }

// TraceAnalysis derives the paper's §VII metrics (dispatch latency,
// management/execution ratio) from the recorded trace, or returns nil
// when no in-memory trace exists. On multi-core hosts the analysis
// shards across per-thread workers (see WithAnalysisParallelism); the
// result is identical to the sequential analysis.
func (r *Results) TraceAnalysis() *TraceAnalysis {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.analysis == nil && r.trace != nil {
		r.analysis = trace.AnalyzeParallel(r.trace, r.cfg.analysisWorkers)
	}
	return r.analysis
}

// Bottlenecks runs the Scalasca-style bottleneck analysis (wait-state
// classification, task-graph critical path, what-if savings) over the
// recorded trace, or returns nil when no in-memory trace exists. Like
// TraceAnalysis it shards across per-thread workers (see
// WithAnalysisParallelism) with a result identical to the sequential
// analysis, and is computed once and cached.
func (r *Results) Bottlenecks() *BottleneckAnalysis {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.bottlenecks == nil && r.trace != nil {
		r.bottlenecks = bottleneck.AnalyzeQuery(r.trace, trace.Query{}, r.cfg.analysisWorkers)
	}
	return r.bottlenecks
}

// Findings diagnoses tasking inefficiencies in the profile using the
// paper's Section III patterns, or returns nil when the session did not
// profile.
func (r *Results) Findings() []Finding {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.findingsSet {
		if rep := r.reportLocked(); rep != nil {
			r.findings = AnalyzeReport(rep)
		}
		r.findingsSet = true
	}
	return r.findings
}

// FlightRecorder reports the flight recorder's final accounting — ring
// configuration, retained window size, dropped events/chunks — or nil
// for sessions without a flight recorder. The same information is
// recorded in the experiment's meta.json and in the archived trace's
// accounting chunk.
func (r *Results) FlightRecorder() *FlightRecorderInfo {
	if r.flightStats == nil {
		return nil
	}
	return flightRecorderInfo(*r.flightStats, "end", nil)
}

// RemoteFallback reports the local archive a remote-tracing session
// spilled to after losing its daemon for good, or nil when the stream
// ended normally (or no fallback was configured). RemoteResumes and
// RemoteGapBytes complete the picture: how often the stream survived a
// severed connection by resuming, and how many archive bytes an
// unresumable gap lost remotely.
func (r *Results) RemoteFallback() *RemoteFallbackInfo { return r.remoteFallback }

// RemoteResumes returns how many times the remote trace stream
// reconnected and resumed mid-stream (0 for local sessions).
func (r *Results) RemoteResumes() int64 { return r.remoteResumes }

// RemoteGapBytes returns the archive bytes lost remotely to an
// unresumable gap (0 for local sessions and gap-free streams).
func (r *Results) RemoteGapBytes() int64 { return r.remoteGapBytes }

// TeamStats returns the scheduler counters of the run's last parallel
// region.
func (r *Results) TeamStats() TeamStats { return r.stats }

// WallTime returns the wall-clock duration from NewSession to End.
func (r *Results) WallTime() time.Duration { return r.wall }

// Locations returns the per-thread profiles, the raw input of Report —
// the power-user view (allocation counters, per-location inspection).
// Nil when the session did not profile.
func (r *Results) Locations() []*ThreadProfile {
	if r.m == nil {
		return nil
	}
	return r.m.Locations()
}
