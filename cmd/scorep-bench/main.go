// Command scorep-bench is the perf-trajectory harness: it runs the
// paper's Fig. 13/14/15 overhead experiments and microbenchmarks of the
// per-event measurement hot path with warmup and repetitions, and emits
// a machine-readable JSON report (ns/op, allocs/op, bytes/event, deltas
// against a committed baseline).
//
// The committed baseline (bench_baseline.json) pins the perf trajectory:
// CI runs `scorep-bench -quick -check-allocs` on every change and fails
// when a hot-path benchmark allocates more per op than the baseline —
// ns/op is reported but not gated, since wall-clock numbers are not
// comparable across machines, while allocation counts are.
//
// Usage:
//
//	scorep-bench -quick -baseline bench_baseline.json -out BENCH_PR4.json -check-allocs
//	scorep-bench -bench 'fig13/fib' -reps 5
//
// Benchmark names are hierarchical: micro/* exercises the profiling
// engine directly, event/* the full runtime->listener per-event path in
// each listener configuration (uninst, profile, trace, profile+trace,
// profile+filter), stream/* the trace pipeline — the per-event record
// path (stream/record), concurrent archive write throughput
// (stream/write, 1 vs 4 writer threads at GOMAXPROCS 1 and 4), archive
// decoding (stream/decode) and out-of-core analysis sequential vs
// parallel (stream/analyze), all reporting events/sec and bytes/event —
// clock/* the timestamp source, and fig13/14/15 the paper's figure
// experiments on the BOTS codes.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/bots"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/measure"
	"repro/internal/omp"
	"repro/internal/otf2"
	"repro/internal/pomp"
	"repro/internal/region"
	"repro/internal/trace"
)

// Result is one benchmark measurement: the minimum ns/op over all
// repetitions (the least-noisy estimate of the true cost) and the
// minimum allocs/op (steady-state allocation behaviour; amortized warmup
// allocations can make single repetitions read high).
type Result struct {
	Name        string             `json:"name"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	N           int                `json:"n"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Delta compares one benchmark against the baseline file.
type Delta struct {
	Name        string  `json:"name"`
	BaseNsPerOp float64 `json:"base_ns_per_op"`
	NsPerOp     float64 `json:"ns_per_op"`
	NsDeltaPct  float64 `json:"ns_delta_pct"`
	BaseAllocs  int64   `json:"base_allocs_per_op"`
	Allocs      int64   `json:"allocs_per_op"`
	Hot         bool    `json:"hot"`
}

// File is the schema of the emitted JSON (and of the committed
// baseline).
type File struct {
	Schema       string   `json:"schema"`
	Quick        bool     `json:"quick"`
	GoVersion    string   `json:"go_version"`
	GOOS         string   `json:"goos"`
	GOARCH       string   `json:"goarch"`
	GOMAXPROCS   int      `json:"gomaxprocs"`
	NumCPU       int      `json:"num_cpu"`
	BenchTime    string   `json:"bench_time"`
	Reps         int      `json:"reps"`
	Timestamp    string   `json:"timestamp"`
	Results      []Result `json:"results"`
	BaselineFile string   `json:"baseline_file,omitempty"`
	Deltas       []Delta  `json:"deltas,omitempty"`
}

// spec is one benchmark to run. Hot marks per-event hot-path benches
// whose allocs/op are gated against the baseline by -check-allocs.
type spec struct {
	name  string
	hot   bool
	quick bool // included in -quick mode
	fn    func(b *testing.B)
}

// Shared regions for the micro/event benches, interned once in the
// default registry like OPARI2's generated registration.
var (
	benchPar  = region.MustRegister("bench.parallel", "bench.go", 1, region.Parallel)
	benchWork = region.MustRegister("bench.work", "bench.go", 2, region.UserFunction)
	benchTask = region.MustRegister("bench.task", "bench.go", 3, region.Task)
	benchTw   = region.MustRegister("bench.taskwait", "bench.go", 4, region.Taskwait)
)

func nopTask(*omp.Thread) {}

func nopFn() {}

// discardSink is a zero-cost streaming-trace sink.
type discardSink struct{}

func (discardSink) WriteEvents(int, []trace.Event) error { return nil }

// countingWriter counts bytes written (for bytes/event metrics).
type countingWriter struct{ n int64 }

func (c *countingWriter) Write(p []byte) (int, error) { c.n += int64(len(p)); return len(p), nil }

// newListener builds one listener configuration. The finish func
// finalizes whatever the configuration wired.
func newListener(cfg string) (omp.Listener, func()) {
	switch cfg {
	case "uninst":
		return nil, func() {}
	case "profile":
		m := measure.New()
		return m, func() { m.Finish() }
	case "profile+filter":
		// A filter that excludes nothing but must be consulted per event:
		// the worst case of the filter lookup cost.
		m := measure.New()
		f := measure.NewFilter(m, "zz_never_*", "zz_nomatch")
		return f, func() { m.Finish() }
	case "trace":
		rec := trace.NewStreamingRecorder(clock.NewSystem(), discardSink{}, 0)
		return rec, func() { rec.Finish() }
	case "profile+trace":
		// The canonical WithTracing pair under a Tee — one shared clock,
		// as the Session wires it — streaming so the benchmark loop is
		// bounded-memory.
		clk := clock.NewSystem()
		m := measure.NewWithClock(clk, region.Default)
		rec := trace.NewStreamingRecorder(clk, discardSink{}, 0)
		return trace.NewTee(m, rec), func() { m.Finish(); rec.Finish() }
	case "profile+trace-mem":
		// In-memory recorder (the WithTracing session default); only used
		// by the figure benches, which bound the trace per iteration.
		clk := clock.NewSystem()
		m := measure.NewWithClock(clk, region.Default)
		rec := trace.NewRecorder(clk)
		return trace.NewTee(m, rec), func() { m.Finish(); rec.Finish() }
	}
	panic("scorep-bench: unknown listener config " + cfg)
}

// benchEnterExit measures one instrumented user-region visit through the
// full runtime->listener path.
func benchEnterExit(cfg string) func(*testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		l, fin := newListener(cfg)
		rt := omp.NewRuntime(l)
		rt.Parallel(1, benchPar, func(t *omp.Thread) {
			for i := 0; i < 512; i++ { // steady the path before timing
				pomp.Function(t, benchWork, nopFn)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pomp.Function(t, benchWork, nopFn)
			}
			b.StopTimer()
		})
		fin()
	}
}

// benchTaskInline measures the full event cost of one undeferred task:
// create-begin/end, begin/end, switch — five events per op.
func benchTaskInline(cfg string) func(*testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		l, fin := newListener(cfg)
		rt := omp.NewRuntime(l)
		rt.Parallel(1, benchPar, func(t *omp.Thread) {
			for i := 0; i < 512; i++ {
				t.NewTask(benchTask, nopTask, omp.If(false))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t.NewTask(benchTask, nopTask, omp.If(false))
			}
			b.StopTimer()
		})
		fin()
	}
}

// benchTaskSpawn measures deferred task spawn+execute throughput with a
// taskwait every 64 tasks (single thread, so every task runs locally).
func benchTaskSpawn(cfg string) func(*testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		l, fin := newListener(cfg)
		rt := omp.NewRuntime(l)
		rt.Parallel(1, benchPar, func(t *omp.Thread) {
			for i := 0; i < 512; i++ {
				t.NewTask(benchTask, nopTask)
				if i%64 == 63 {
					t.Taskwait(benchTw)
				}
			}
			t.Taskwait(benchTw)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t.NewTask(benchTask, nopTask)
				if i%64 == 63 {
					t.Taskwait(benchTw)
				}
			}
			t.Taskwait(benchTw)
			b.StopTimer()
		})
		fin()
	}
}

// benchMicroEnterExit measures the profiling engine alone (no runtime).
func benchMicroEnterExit(b *testing.B) {
	b.ReportAllocs()
	p := core.NewThreadProfile(0, clock.NewSystem())
	for i := 0; i < 512; i++ {
		p.Enter(benchWork)
		p.Exit(benchWork)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Enter(benchWork)
		p.Exit(benchWork)
	}
}

// benchMicroTask measures the task-instance lifecycle in the profiling
// engine alone: allocation, switch, stub accounting, merge.
func benchMicroTask(b *testing.B) {
	b.ReportAllocs()
	p := core.NewThreadProfile(0, clock.NewSystem())
	p.Enter(benchTw)
	for i := 0; i < 512; i++ {
		p.TaskBegin(benchTask)
		p.TaskEnd()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.TaskBegin(benchTask)
		p.TaskEnd()
	}
}

// benchStreamRecord measures the streaming record path end to end
// through the binary archive encoder, reporting bytes/event.
func benchStreamRecord(b *testing.B) {
	b.ReportAllocs()
	cw := &countingWriter{}
	w := otf2.NewWriter(cw)
	rec := trace.NewStreamingRecorder(clock.NewSystem(), w, 0)
	rt := omp.NewRuntime(rec)
	var events int64
	rt.Parallel(1, benchPar, func(t *omp.Thread) {
		for i := 0; i < 512; i++ {
			pomp.Function(t, benchWork, nopFn)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pomp.Function(t, benchWork, nopFn)
		}
		b.StopTimer()
		events = 2 * int64(b.N)
	})
	rec.Finish()
	if err := w.Flush(); err != nil {
		b.Fatalf("archive flush: %v", err)
	}
	if events > 0 {
		b.ReportMetric(float64(cw.n)/float64(events), "bytes/event")
	}
}

// benchClock measures the timestamp read cost.
func benchClock(zeroValue bool) func(*testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		var clk clock.Clock
		if zeroValue {
			clk = &clock.System{}
		} else {
			clk = clock.NewSystem()
		}
		var sink int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sink += clk.Now()
		}
		if sink < 0 {
			b.Fatal("clock went backwards")
		}
	}
}

// archiveInput is a prebuilt synthetic recording and its encoded
// archive, shared by the stream/write, stream/decode and stream/analyze
// benches (built once per size, outside all timed regions).
type archiveInput struct {
	tr     *trace.Trace
	data   []byte
	events int
}

type archiveInputKey struct{ threads, tasks int }

var (
	archiveInputs   = map[archiveInputKey]*archiveInput{}
	archiveInputsMu sync.Mutex
)

// archiveFor builds (once) a trace of threads x tasksPerThread task
// lifecycles — the event mix of a BOTS run — and its binary archive.
func archiveFor(threads, tasksPerThread int) *archiveInput {
	archiveInputsMu.Lock()
	defer archiveInputsMu.Unlock()
	key := archiveInputKey{threads, tasksPerThread}
	if in, ok := archiveInputs[key]; ok {
		return in
	}
	par := region.MustRegister("bench.stream.par", "bench.go", 10, region.Parallel)
	task := region.MustRegister("bench.stream.task", "bench.go", 11, region.Task)
	create := region.MustRegister("bench.stream.create", "bench.go", 11, region.TaskCreate)
	tw := region.MustRegister("bench.stream.tw", "bench.go", 12, region.Taskwait)
	tr := &trace.Trace{Threads: make(map[int][]trace.Event)}
	var id uint64
	for t := 0; t < threads; t++ {
		now := int64(1000 * t)
		tick := func() int64 { now += 740; return now }
		evs := make([]trace.Event, 0, tasksPerThread*4+7)
		evs = append(evs,
			trace.Event{Time: tick(), Type: trace.EvThreadBegin},
			trace.Event{Time: tick(), Type: trace.EvEnter, Region: par},
			trace.Event{Time: tick(), Type: trace.EvEnter, Region: tw})
		for i := 0; i < tasksPerThread; i++ {
			id++
			evs = append(evs,
				trace.Event{Time: tick(), Type: trace.EvTaskCreateBegin, Region: create},
				trace.Event{Time: tick(), Type: trace.EvTaskCreateEnd, Region: task, TaskID: id},
				trace.Event{Time: tick(), Type: trace.EvTaskBegin, Region: task, TaskID: id},
				trace.Event{Time: tick(), Type: trace.EvTaskEnd, Region: task, TaskID: id})
		}
		evs = append(evs,
			trace.Event{Time: tick(), Type: trace.EvExit, Region: tw},
			trace.Event{Time: tick(), Type: trace.EvExit, Region: par},
			trace.Event{Time: tick(), Type: trace.EvThreadEnd})
		tr.Threads[t] = evs
	}
	var buf bytes.Buffer
	if err := otf2.Write(&buf, tr); err != nil {
		panic("scorep-bench: building archive input: " + err.Error())
	}
	in := &archiveInput{tr: tr, data: buf.Bytes(), events: tr.NumEvents()}
	archiveInputs[key] = in
	return in
}

// benchArchiveWrite measures concurrent archive write throughput: one
// op is one event encoded and streamed into a shared Writer by one of
// `threads` concurrently flushing goroutines at the given GOMAXPROCS.
// The scaling of threads=4 over threads=1 quantifies how far the
// encoding has moved out of the writer lock.
func benchArchiveWrite(threads, gomaxprocs, tasksPerThread int) func(*testing.B) {
	return func(b *testing.B) {
		prev := runtime.GOMAXPROCS(gomaxprocs)
		defer runtime.GOMAXPROCS(prev)
		b.ReportAllocs()
		in := archiveFor(threads, tasksPerThread)
		cw := &countingWriter{}
		w := otf2.NewWriter(cw)
		per := (b.N + threads - 1) / threads
		var wg sync.WaitGroup
		b.ResetTimer()
		for t := 0; t < threads; t++ {
			wg.Add(1)
			go func(t int) {
				defer wg.Done()
				evs := in.tr.Threads[t]
				const batch = 512
				for done := 0; done < per; {
					lo := done % len(evs)
					hi := lo + batch
					if hi > len(evs) {
						hi = len(evs)
					}
					if hi-lo > per-done {
						hi = lo + per - done
					}
					if err := w.WriteEvents(t, evs[lo:hi]); err != nil {
						b.Error(err)
						return
					}
					done += hi - lo
				}
			}(t)
		}
		wg.Wait()
		b.StopTimer()
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
		written := int64(per) * int64(threads)
		b.ReportMetric(float64(cw.n)/float64(written), "bytes/event")
		if s := b.Elapsed().Seconds(); s > 0 {
			b.ReportMetric(float64(written)/s, "events/sec")
		}
	}
}

// benchArchiveDecode measures whole-archive decoding (ReadAll); one op
// is one full pass, with ns/event and events/sec reported.
func benchArchiveDecode(workers, gomaxprocs, tasksPerThread int) func(*testing.B) {
	return func(b *testing.B) {
		prev := runtime.GOMAXPROCS(gomaxprocs)
		defer runtime.GOMAXPROCS(prev)
		b.ReportAllocs()
		in := archiveFor(4, tasksPerThread)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := otf2.ReadAllParallel(bytes.NewReader(in.data), region.NewRegistry(), workers); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		reportPerEvent(b, in.events)
	}
}

// benchArchiveAnalyze measures out-of-core analysis of the archive; one
// op is one full pass. workers == 1 is the sequential baseline the
// parallel variants are compared against.
func benchArchiveAnalyze(workers, gomaxprocs, tasksPerThread int) func(*testing.B) {
	return func(b *testing.B) {
		prev := runtime.GOMAXPROCS(gomaxprocs)
		defer runtime.GOMAXPROCS(prev)
		b.ReportAllocs()
		in := archiveFor(4, tasksPerThread)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := otf2.AnalyzeParallel(bytes.NewReader(in.data), workers); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		reportPerEvent(b, in.events)
	}
}

// reportPerEvent derives per-event metrics for whole-archive ops.
func reportPerEvent(b *testing.B, events int) {
	if b.N == 0 || events == 0 {
		return
	}
	total := float64(b.N) * float64(events)
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/total, "ns/event")
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(total/s, "events/sec")
	}
}

var kernelSink uint64

// benchFigure runs one BOTS kernel per op in the given listener
// configuration — the shape of the paper's Fig. 13/14/15 experiments.
func benchFigure(kernel bots.Kernel, threads int, cfg string) func(*testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		var sink uint64
		for i := 0; i < b.N; i++ {
			l, fin := newListener(cfg)
			rt := omp.NewRuntime(l)
			sink += kernel(rt, threads)
			fin()
		}
		kernelSink += sink
	}
}

// buildSpecs assembles the benchmark list.
func buildSpecs(quick bool) []spec {
	var specs []spec
	add := func(name string, hot, q bool, fn func(*testing.B)) {
		specs = append(specs, spec{name: name, hot: hot, quick: q, fn: fn})
	}

	// Microbenchmarks of the profiling engine.
	add("micro/enter-exit/core", true, true, benchMicroEnterExit)
	add("micro/task/core", true, true, benchMicroTask)

	// Per-event path through the runtime, per listener configuration.
	for _, cfg := range []string{"uninst", "profile", "profile+filter", "trace", "profile+trace"} {
		add("event/enter-exit/"+cfg, cfg != "uninst", true, benchEnterExit(cfg))
	}
	for _, cfg := range []string{"uninst", "profile", "profile+trace"} {
		add("event/task-inline/"+cfg, cfg != "uninst", true, benchTaskInline(cfg))
	}
	for _, cfg := range []string{"uninst", "profile+trace"} {
		add("event/task-spawn/"+cfg, cfg != "uninst", true, benchTaskSpawn(cfg))
	}

	// Streaming record incl. binary encoding, and the clock.
	add("stream/record", true, true, benchStreamRecord)
	add("clock/now", false, true, benchClock(false))
	add("clock/now-zero-value", false, true, benchClock(true))

	// Archive pipeline throughput: concurrent writes into one Writer,
	// whole-archive decode, and out-of-core analysis sequential vs
	// parallel, at GOMAXPROCS 1 and 4. The tasks= label pins the input
	// size (quick inputs must not be compared against full baselines);
	// full mode uses a >= 1M-event archive (4 threads x 65536 tasks x 4
	// lifecycle events + envelope).
	streamTasks := 65536
	if quick {
		streamTasks = 4096
	}
	st := fmt.Sprintf("tasks=%d", streamTasks)
	add("stream/write/threads=1/cpu=1/"+st, false, true, benchArchiveWrite(1, 1, streamTasks))
	add("stream/write/threads=4/cpu=1/"+st, false, true, benchArchiveWrite(4, 1, streamTasks))
	add("stream/write/threads=4/cpu=4/"+st, false, true, benchArchiveWrite(4, 4, streamTasks))
	add("stream/decode/seq/cpu=1/"+st, false, true, benchArchiveDecode(1, 1, streamTasks))
	add("stream/decode/par/workers=4/cpu=4/"+st, false, true, benchArchiveDecode(4, 4, streamTasks))
	add("stream/analyze/seq/cpu=1/"+st, false, true, benchArchiveAnalyze(1, 1, streamTasks))
	add("stream/analyze/par/workers=4/cpu=1/"+st, false, true, benchArchiveAnalyze(4, 1, streamTasks))
	add("stream/analyze/par/workers=4/cpu=4/"+st, false, true, benchArchiveAnalyze(4, 4, streamTasks))

	// Figure experiments on the BOTS codes.
	size := bots.SizeSmall
	threads := []int{1, 4}
	fig13Codes := bots.All
	fig1415Codes := bots.CutoffCodes()
	fig15Threads := []int{1, 2, 4, 8}
	if quick {
		size = bots.SizeTiny
		threads = []int{1, 2}
		fig13Codes = []*bots.Spec{bots.FibSpec, bots.NQueensSpec}
		fig1415Codes = []*bots.Spec{bots.FibSpec}
		fig15Threads = []int{1, 2}
	}
	// Figure bench names embed the input size: quick mode (tiny) must
	// not be compared against a full-mode (small) baseline entry.
	for _, sp := range fig13Codes {
		kernel := sp.Prepare(size, sp.HasCutoff)
		for _, th := range threads {
			for _, cfg := range []string{"uninst", "profile", "profile+trace-mem"} {
				label := map[string]string{"uninst": "uninst", "profile": "inst", "profile+trace-mem": "inst+trace"}[cfg]
				add(fmt.Sprintf("fig13/%s/size=%s/threads=%d/%s", sp.Name, size, th, label), false, true,
					benchFigure(kernel, th, cfg))
			}
		}
	}
	for _, sp := range fig1415Codes {
		kernel := sp.Prepare(size, false)
		for _, th := range threads {
			for _, cfg := range []string{"uninst", "profile"} {
				label := map[string]string{"uninst": "uninst", "profile": "inst"}[cfg]
				add(fmt.Sprintf("fig14/%s/size=%s/threads=%d/%s", sp.Name, size, th, label), false, true,
					benchFigure(kernel, th, cfg))
			}
		}
		for _, th := range fig15Threads {
			add(fmt.Sprintf("fig15/%s/size=%s/threads=%d", sp.Name, size, th), false, true,
				benchFigure(kernel, th, "uninst"))
		}
	}
	return specs
}

// runSpec executes one spec reps times and keeps the minimum ns/op and
// minimum allocs/op (see Result). A repetition that fails (b.Fatal,
// which makes testing.Benchmark return N == 0) is skipped; if no
// repetition succeeds, runSpec errors — a zero-value Result would
// otherwise read as a perfect 0 allocs/op score and mask exactly the
// regressions the -check-allocs gate exists to catch.
func runSpec(s spec, reps int) (Result, error) {
	res := Result{Name: s.name}
	valid := false
	for r := 0; r < reps; r++ {
		br := testing.Benchmark(s.fn)
		if br.N == 0 {
			continue
		}
		ns := float64(br.T.Nanoseconds()) / float64(br.N)
		if !valid || ns < res.NsPerOp {
			res.NsPerOp = ns
			res.BytesPerOp = br.AllocedBytesPerOp()
			res.N = br.N
			if len(br.Extra) > 0 {
				res.Metrics = make(map[string]float64, len(br.Extra))
				for k, v := range br.Extra {
					res.Metrics[k] = v
				}
			}
		}
		if !valid || br.AllocsPerOp() < res.AllocsPerOp {
			res.AllocsPerOp = br.AllocsPerOp()
		}
		valid = true
	}
	if !valid {
		return res, fmt.Errorf("benchmark %s produced no valid repetition", s.name)
	}
	return res, nil
}

func main() {
	testing.Init()
	quick := flag.Bool("quick", false, "small inputs, fewer codes/reps (the CI mode)")
	out := flag.String("out", "", "write the JSON report to this file (default stdout)")
	baseline := flag.String("baseline", "", "baseline JSON to compute deltas against")
	benchRe := flag.String("bench", "", "only run benchmarks matching this regexp")
	reps := flag.Int("reps", 0, "repetitions per benchmark (default 3, quick 2)")
	benchtime := flag.String("benchtime", "", "per-run duration (default 300ms, quick 60ms)")
	checkAllocs := flag.Bool("check-allocs", false, "exit 1 when a hot-path bench allocates more per op than the baseline")
	flag.Parse()

	if *reps == 0 {
		*reps = 3
		if *quick {
			*reps = 2
		}
	}
	if *benchtime == "" {
		*benchtime = "300ms"
		if *quick {
			*benchtime = "60ms"
		}
	}
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		fmt.Fprintf(os.Stderr, "scorep-bench: bad -benchtime: %v\n", err)
		os.Exit(2)
	}

	var filter *regexp.Regexp
	if *benchRe != "" {
		var err error
		if filter, err = regexp.Compile(*benchRe); err != nil {
			fmt.Fprintf(os.Stderr, "scorep-bench: bad -bench: %v\n", err)
			os.Exit(2)
		}
	}

	specs := buildSpecs(*quick)
	file := File{
		Schema:     "scorep-bench/1",
		Quick:      *quick,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		BenchTime:  *benchtime,
		Reps:       *reps,
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
	}
	hot := make(map[string]bool)
	for _, s := range specs {
		if *quick && !s.quick {
			continue
		}
		if filter != nil && !filter.MatchString(s.name) {
			continue
		}
		r, err := runSpec(s, *reps)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scorep-bench: %v\n", err)
			os.Exit(2)
		}
		hot[s.name] = s.hot
		file.Results = append(file.Results, r)
		fmt.Fprintf(os.Stderr, "%-44s %12.1f ns/op %6d allocs/op\n", r.Name, r.NsPerOp, r.AllocsPerOp)
	}

	var regressions []string
	if *baseline != "" {
		base, err := readBaseline(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scorep-bench: baseline: %v\n", err)
			os.Exit(2)
		}
		file.BaselineFile = *baseline
		byName := make(map[string]Result, len(base.Results))
		for _, r := range base.Results {
			byName[r.Name] = r
		}
		for _, r := range file.Results {
			b, ok := byName[r.Name]
			if !ok {
				continue
			}
			d := Delta{
				Name:        r.Name,
				BaseNsPerOp: b.NsPerOp,
				NsPerOp:     r.NsPerOp,
				BaseAllocs:  b.AllocsPerOp,
				Allocs:      r.AllocsPerOp,
				Hot:         hot[r.Name],
			}
			if b.NsPerOp > 0 {
				d.NsDeltaPct = (r.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
			}
			file.Deltas = append(file.Deltas, d)
			if d.Hot && d.Allocs > d.BaseAllocs {
				regressions = append(regressions,
					fmt.Sprintf("%s: %d allocs/op, baseline %d", d.Name, d.Allocs, d.BaseAllocs))
			}
		}
		sort.Slice(file.Deltas, func(i, j int) bool { return file.Deltas[i].Name < file.Deltas[j].Name })
	}

	enc, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "scorep-bench: encode: %v\n", err)
		os.Exit(2)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "scorep-bench: write %s: %v\n", *out, err)
		os.Exit(2)
	}

	if *checkAllocs && len(regressions) > 0 {
		fmt.Fprintln(os.Stderr, "scorep-bench: hot-path allocation regressions:")
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "  "+r)
		}
		os.Exit(1)
	}
}

func readBaseline(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if f.Schema != "scorep-bench/1" {
		return nil, fmt.Errorf("%s: unknown schema %q", path, f.Schema)
	}
	return &f, nil
}
