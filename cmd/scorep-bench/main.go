// Command scorep-bench is the perf-trajectory harness: it runs the
// paper's Fig. 13/14/15 overhead experiments and microbenchmarks of the
// per-event measurement hot path with warmup and repetitions, and emits
// a machine-readable JSON report (ns/op, allocs/op, bytes/event, deltas
// against a committed baseline).
//
// The committed baseline (bench_baseline.json) pins the perf trajectory:
// CI runs `scorep-bench -quick -check-allocs` on every change and fails
// when a hot-path benchmark allocates more per op than the baseline —
// ns/op is reported but not gated, since wall-clock numbers are not
// comparable across machines, while allocation counts are.
//
// Usage:
//
//	scorep-bench -quick -baseline bench_baseline.json -out BENCH_PR4.json -check-allocs
//	scorep-bench -bench 'fig13/fib' -reps 5
//
// Benchmark names are hierarchical: micro/* exercises the profiling
// engine directly, event/* the full runtime->listener per-event path in
// each listener configuration (uninst, profile, trace, profile+trace,
// profile+filter), stream/* the trace pipeline — the per-event record
// path (stream/record), concurrent archive write throughput
// (stream/write, 1 vs 4 writer threads at GOMAXPROCS 1 and 4, plus the
// v1 and flate-compressed encodings of the single-thread write),
// archive decoding (stream/decode), out-of-core analysis sequential vs
// parallel (stream/analyze, with stream/analyze/bottlenecks measuring
// the automatic bottleneck analysis), index-driven random chunk access
// (stream/seek) and time-window queries (stream/analyze/windowed, with
// a chunk-read-frac metric showing how much of the archive the index
// pruned), all reporting events/sec and bytes/event — clock/* the
// timestamp source, and fig13/14/15 the paper's figure experiments on
// the BOTS codes.
//
// -check-write-gate fails the run when the v2 single-thread write
// throughput drops below 95% of the v1 throughput measured in the same
// run — a machine-independent guard that the footer index and
// time-bound tracking stay (nearly) free on the write path.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bots"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/measure"
	"repro/internal/omp"
	"repro/internal/otf2"
	"repro/internal/pomp"
	"repro/internal/region"
	"repro/internal/sink"
	"repro/internal/trace"
)

// Result is one benchmark measurement: the minimum ns/op over all
// repetitions (the least-noisy estimate of the true cost) and the
// minimum allocs/op (steady-state allocation behaviour; amortized warmup
// allocations can make single repetitions read high).
type Result struct {
	Name        string             `json:"name"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	N           int                `json:"n"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Delta compares one benchmark against the baseline file.
type Delta struct {
	Name        string  `json:"name"`
	BaseNsPerOp float64 `json:"base_ns_per_op"`
	NsPerOp     float64 `json:"ns_per_op"`
	NsDeltaPct  float64 `json:"ns_delta_pct"`
	BaseAllocs  int64   `json:"base_allocs_per_op"`
	Allocs      int64   `json:"allocs_per_op"`
	Hot         bool    `json:"hot"`
}

// File is the schema of the emitted JSON (and of the committed
// baseline).
type File struct {
	Schema       string   `json:"schema"`
	Quick        bool     `json:"quick"`
	GoVersion    string   `json:"go_version"`
	GOOS         string   `json:"goos"`
	GOARCH       string   `json:"goarch"`
	GOMAXPROCS   int      `json:"gomaxprocs"`
	NumCPU       int      `json:"num_cpu"`
	BenchTime    string   `json:"bench_time"`
	Reps         int      `json:"reps"`
	Timestamp    string   `json:"timestamp"`
	Results      []Result `json:"results"`
	BaselineFile string   `json:"baseline_file,omitempty"`
	Deltas       []Delta  `json:"deltas,omitempty"`
}

// spec is one benchmark to run. Hot marks per-event hot-path benches
// whose allocs/op are gated against the baseline by -check-allocs.
type spec struct {
	name  string
	hot   bool
	quick bool // included in -quick mode
	fn    func(b *testing.B)
}

// Shared regions for the micro/event benches, interned once in the
// default registry like OPARI2's generated registration.
var (
	benchPar  = region.MustRegister("bench.parallel", "bench.go", 1, region.Parallel)
	benchWork = region.MustRegister("bench.work", "bench.go", 2, region.UserFunction)
	benchTask = region.MustRegister("bench.task", "bench.go", 3, region.Task)
	benchTw   = region.MustRegister("bench.taskwait", "bench.go", 4, region.Taskwait)
)

func nopTask(*omp.Thread) {}

func nopFn() {}

// discardSink is a zero-cost streaming-trace sink.
type discardSink struct{}

func (discardSink) WriteEvents(int, []trace.Event) error { return nil }

// countingWriter counts bytes written (for bytes/event metrics).
type countingWriter struct{ n int64 }

func (c *countingWriter) Write(p []byte) (int, error) { c.n += int64(len(p)); return len(p), nil }

// newListener builds one listener configuration. The finish func
// finalizes whatever the configuration wired.
func newListener(cfg string) (omp.Listener, func()) {
	switch cfg {
	case "uninst":
		return nil, func() {}
	case "profile":
		m := measure.New()
		return m, func() { m.Finish() }
	case "profile+filter":
		// A filter that excludes nothing but must be consulted per event:
		// the worst case of the filter lookup cost.
		m := measure.New()
		f := measure.NewFilter(m, "zz_never_*", "zz_nomatch")
		return f, func() { m.Finish() }
	case "trace":
		rec := trace.NewStreamingRecorder(clock.NewSystem(), discardSink{}, 0)
		return rec, func() { rec.Finish() }
	case "profile+trace":
		// The canonical WithTracing pair under a Tee — one shared clock,
		// as the Session wires it — streaming so the benchmark loop is
		// bounded-memory.
		clk := clock.NewSystem()
		m := measure.NewWithClock(clk, region.Default)
		rec := trace.NewStreamingRecorder(clk, discardSink{}, 0)
		return trace.NewTee(m, rec), func() { m.Finish(); rec.Finish() }
	case "profile+trace-mem":
		// In-memory recorder (the WithTracing session default); only used
		// by the figure benches, which bound the trace per iteration.
		clk := clock.NewSystem()
		m := measure.NewWithClock(clk, region.Default)
		rec := trace.NewRecorder(clk)
		return trace.NewTee(m, rec), func() { m.Finish(); rec.Finish() }
	}
	panic("scorep-bench: unknown listener config " + cfg)
}

// benchEnterExit measures one instrumented user-region visit through the
// full runtime->listener path.
func benchEnterExit(cfg string) func(*testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		l, fin := newListener(cfg)
		rt := omp.NewRuntime(l)
		rt.Parallel(1, benchPar, func(t *omp.Thread) {
			for i := 0; i < 512; i++ { // steady the path before timing
				pomp.Function(t, benchWork, nopFn)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pomp.Function(t, benchWork, nopFn)
			}
			b.StopTimer()
		})
		fin()
	}
}

// benchTaskInline measures the full event cost of one undeferred task:
// create-begin/end, begin/end, switch — five events per op.
func benchTaskInline(cfg string) func(*testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		l, fin := newListener(cfg)
		rt := omp.NewRuntime(l)
		rt.Parallel(1, benchPar, func(t *omp.Thread) {
			for i := 0; i < 512; i++ {
				t.NewTask(benchTask, nopTask, omp.If(false))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t.NewTask(benchTask, nopTask, omp.If(false))
			}
			b.StopTimer()
		})
		fin()
	}
}

// benchTaskSpawn measures deferred task spawn+execute throughput with a
// taskwait every 64 tasks (single thread, so every task runs locally).
func benchTaskSpawn(cfg string) func(*testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		l, fin := newListener(cfg)
		rt := omp.NewRuntime(l)
		rt.Parallel(1, benchPar, func(t *omp.Thread) {
			for i := 0; i < 512; i++ {
				t.NewTask(benchTask, nopTask)
				if i%64 == 63 {
					t.Taskwait(benchTw)
				}
			}
			t.Taskwait(benchTw)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t.NewTask(benchTask, nopTask)
				if i%64 == 63 {
					t.Taskwait(benchTw)
				}
			}
			t.Taskwait(benchTw)
			b.StopTimer()
		})
		fin()
	}
}

// benchMicroEnterExit measures the profiling engine alone (no runtime).
func benchMicroEnterExit(b *testing.B) {
	b.ReportAllocs()
	p := core.NewThreadProfile(0, clock.NewSystem())
	for i := 0; i < 512; i++ {
		p.Enter(benchWork)
		p.Exit(benchWork)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Enter(benchWork)
		p.Exit(benchWork)
	}
}

// benchMicroTask measures the task-instance lifecycle in the profiling
// engine alone: allocation, switch, stub accounting, merge.
func benchMicroTask(b *testing.B) {
	b.ReportAllocs()
	p := core.NewThreadProfile(0, clock.NewSystem())
	p.Enter(benchTw)
	for i := 0; i < 512; i++ {
		p.TaskBegin(benchTask)
		p.TaskEnd()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.TaskBegin(benchTask)
		p.TaskEnd()
	}
}

// benchStreamRecord measures the streaming record path end to end
// through the binary archive encoder, reporting bytes/event.
func benchStreamRecord(b *testing.B) {
	b.ReportAllocs()
	cw := &countingWriter{}
	w := otf2.NewWriter(cw)
	rec := trace.NewStreamingRecorder(clock.NewSystem(), w, 0)
	rt := omp.NewRuntime(rec)
	var events int64
	rt.Parallel(1, benchPar, func(t *omp.Thread) {
		for i := 0; i < 512; i++ {
			pomp.Function(t, benchWork, nopFn)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pomp.Function(t, benchWork, nopFn)
		}
		b.StopTimer()
		events = 2 * int64(b.N)
	})
	rec.Finish()
	if err := w.Flush(); err != nil {
		b.Fatalf("archive flush: %v", err)
	}
	if events > 0 {
		b.ReportMetric(float64(cw.n)/float64(events), "bytes/event")
	}
}

// benchFlightRecord measures steady-state flight-recorder recording:
// the ring is filled during warmup, so every measured event goes through
// the seal-and-evict path's amortized cost (mutex, append, occasional
// backing-array reuse) — the price of always-on crash-safe measurement.
func benchFlightRecord(b *testing.B) {
	b.ReportAllocs()
	rec := trace.NewFlightRecorder(clock.NewSystem(), 8, 256)
	rt := omp.NewRuntime(rec)
	rt.Parallel(1, benchPar, func(t *omp.Thread) {
		for i := 0; i < 4096; i++ { // > ring capacity: reach steady-state eviction
			pomp.Function(t, benchWork, nopFn)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pomp.Function(t, benchWork, nopFn)
		}
		b.StopTimer()
	})
	st := rec.FlightStatsNow()
	if st.DroppedEvents == 0 {
		b.Fatal("flight bench never reached steady-state eviction")
	}
	rec.Finish()
}

// benchClock measures the timestamp read cost.
func benchClock(zeroValue bool) func(*testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		var clk clock.Clock
		if zeroValue {
			clk = &clock.System{}
		} else {
			clk = clock.NewSystem()
		}
		var sink int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sink += clk.Now()
		}
		if sink < 0 {
			b.Fatal("clock went backwards")
		}
	}
}

// archiveInput is a prebuilt synthetic recording and its encoded
// archive, shared by the stream/write, stream/decode and stream/analyze
// benches (built once per size, outside all timed regions).
type archiveInput struct {
	tr     *trace.Trace
	data   []byte
	events int
}

type archiveInputKey struct {
	threads, tasks int
	variant        string
}

var (
	archiveInputs   = map[archiveInputKey]*archiveInput{}
	archiveInputsMu sync.Mutex
)

// archiveFor builds (once) a trace of threads x tasksPerThread task
// lifecycles — the event mix of a BOTS run — and its binary archive in
// the default (v2, uncompressed) encoding.
func archiveFor(threads, tasksPerThread int) *archiveInput {
	return archiveVariant(threads, tasksPerThread, "v2")
}

// archiveVariant is archiveFor with an explicit encoding: "v2"
// (default), "v1" (pre-index format) or "flate" (v2 with compressed
// event chunks). The decoded trace is identical across variants; only
// the bytes differ.
func archiveVariant(threads, tasksPerThread int, variant string) *archiveInput {
	archiveInputsMu.Lock()
	defer archiveInputsMu.Unlock()
	key := archiveInputKey{threads, tasksPerThread, variant}
	if in, ok := archiveInputs[key]; ok {
		return in
	}
	tr := buildStreamTrace(threads, tasksPerThread)
	var opts []otf2.WriterOption
	switch variant {
	case "v2":
	case "v1":
		opts = append(opts, otf2.WithVersion(1))
	case "flate":
		opts = append(opts, otf2.WithCompression(otf2.CompressionFlate))
	default:
		panic("scorep-bench: unknown archive variant " + variant)
	}
	var buf bytes.Buffer
	if err := otf2.Write(&buf, tr, opts...); err != nil {
		panic("scorep-bench: building archive input: " + err.Error())
	}
	in := &archiveInput{tr: tr, data: buf.Bytes(), events: tr.NumEvents()}
	archiveInputs[key] = in
	return in
}

// buildStreamTrace synthesizes the threads x tasksPerThread task-
// lifecycle trace the stream benches share.
func buildStreamTrace(threads, tasksPerThread int) *trace.Trace {
	par := region.MustRegister("bench.stream.par", "bench.go", 10, region.Parallel)
	task := region.MustRegister("bench.stream.task", "bench.go", 11, region.Task)
	create := region.MustRegister("bench.stream.create", "bench.go", 11, region.TaskCreate)
	tw := region.MustRegister("bench.stream.tw", "bench.go", 12, region.Taskwait)
	tr := &trace.Trace{Threads: make(map[int][]trace.Event)}
	var id uint64
	for t := 0; t < threads; t++ {
		now := int64(1000 * t)
		tick := func() int64 { now += 740; return now }
		evs := make([]trace.Event, 0, tasksPerThread*4+7)
		evs = append(evs,
			trace.Event{Time: tick(), Type: trace.EvThreadBegin},
			trace.Event{Time: tick(), Type: trace.EvEnter, Region: par},
			trace.Event{Time: tick(), Type: trace.EvEnter, Region: tw})
		for i := 0; i < tasksPerThread; i++ {
			id++
			evs = append(evs,
				trace.Event{Time: tick(), Type: trace.EvTaskCreateBegin, Region: create},
				trace.Event{Time: tick(), Type: trace.EvTaskCreateEnd, Region: task, TaskID: id},
				trace.Event{Time: tick(), Type: trace.EvTaskBegin, Region: task, TaskID: id},
				trace.Event{Time: tick(), Type: trace.EvTaskEnd, Region: task, TaskID: id})
		}
		evs = append(evs,
			trace.Event{Time: tick(), Type: trace.EvExit, Region: tw},
			trace.Event{Time: tick(), Type: trace.EvExit, Region: par},
			trace.Event{Time: tick(), Type: trace.EvThreadEnd})
		tr.Threads[t] = evs
	}
	return tr
}

// benchArchiveWrite measures concurrent archive write throughput: one
// op is one event encoded and streamed into a shared Writer by one of
// `threads` concurrently flushing goroutines at the given GOMAXPROCS.
// The scaling of threads=4 over threads=1 quantifies how far the
// encoding has moved out of the writer lock. opts select the archive
// format (v1, compressed, ...); the default is the v2 indexed format.
func benchArchiveWrite(threads, gomaxprocs, tasksPerThread int, opts ...otf2.WriterOption) func(*testing.B) {
	return func(b *testing.B) {
		prev := runtime.GOMAXPROCS(gomaxprocs)
		defer runtime.GOMAXPROCS(prev)
		b.ReportAllocs()
		in := archiveFor(threads, tasksPerThread)
		cw := &countingWriter{}
		w := otf2.NewWriter(cw, opts...)
		per := (b.N + threads - 1) / threads
		var wg sync.WaitGroup
		b.ResetTimer()
		for t := 0; t < threads; t++ {
			wg.Add(1)
			go func(t int) {
				defer wg.Done()
				evs := in.tr.Threads[t]
				const batch = 512
				for done := 0; done < per; {
					lo := done % len(evs)
					hi := lo + batch
					if hi > len(evs) {
						hi = len(evs)
					}
					if hi-lo > per-done {
						hi = lo + per - done
					}
					if err := w.WriteEvents(t, evs[lo:hi]); err != nil {
						b.Error(err)
						return
					}
					done += hi - lo
				}
			}(t)
		}
		wg.Wait()
		b.StopTimer()
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
		written := int64(per) * int64(threads)
		b.ReportMetric(float64(cw.n)/float64(written), "bytes/event")
		if s := b.Elapsed().Seconds(); s > 0 {
			b.ReportMetric(float64(written)/s, "events/sec")
		}
	}
}

// benchArchiveDecode measures whole-archive decoding (ReadAll); one op
// is one full pass, with ns/event and events/sec reported.
func benchArchiveDecode(workers, gomaxprocs, tasksPerThread int) func(*testing.B) {
	return func(b *testing.B) {
		prev := runtime.GOMAXPROCS(gomaxprocs)
		defer runtime.GOMAXPROCS(prev)
		b.ReportAllocs()
		in := archiveFor(4, tasksPerThread)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := otf2.ReadAllParallel(bytes.NewReader(in.data), region.NewRegistry(), workers); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		reportPerEvent(b, in.events)
	}
}

// benchArchiveAnalyze measures out-of-core analysis of the archive; one
// op is one full pass. workers == 1 is the sequential baseline the
// parallel variants are compared against.
func benchArchiveAnalyze(workers, gomaxprocs, tasksPerThread int) func(*testing.B) {
	return func(b *testing.B) {
		prev := runtime.GOMAXPROCS(gomaxprocs)
		defer runtime.GOMAXPROCS(prev)
		b.ReportAllocs()
		in := archiveFor(4, tasksPerThread)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := otf2.AnalyzeParallel(bytes.NewReader(in.data), workers); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		reportPerEvent(b, in.events)
	}
}

// benchNetWrite measures end-to-end event shipping throughput: one op
// is one event encoded through the archive writer into either a local
// file sink or a scorep-daemon socket sink (unix domain, in-process
// server), across `streams` concurrent producers — each stream its own
// archive, as in the fleet measurement mode. Client Close (drain + seal
// ack) is inside the timed region, so the socket numbers include the
// full cost of getting the bytes acknowledged on the other side.
func benchNetWrite(streams int, socket bool, tasksPerThread int) func(*testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		in := archiveFor(streams, tasksPerThread)
		dir, err := os.MkdirTemp("", "scorep-bench-net")
		if err != nil {
			b.Fatal(err)
		}
		defer os.RemoveAll(dir)

		var srv *sink.Server
		var addr string
		if socket {
			if srv, err = sink.NewServer(dir); err != nil {
				b.Fatal(err)
			}
			sock := filepath.Join(dir, "d.sock")
			ln, err := net.Listen("unix", sock)
			if err != nil {
				b.Fatal(err)
			}
			go srv.Serve(ln)
			addr = "unix://" + sock
		}

		per := (b.N + streams - 1) / streams
		var wg sync.WaitGroup
		b.ResetTimer()
		for s := 0; s < streams; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				evs := in.tr.Threads[s]
				var write func([]trace.Event) error
				var finish func() error
				if socket {
					cl, err := sink.Dial(addr, sink.WithStreamID(fmt.Sprintf("s%d", s)))
					if err != nil {
						b.Error(err)
						return
					}
					write = func(e []trace.Event) error { return cl.WriteEvents(0, e) }
					finish = cl.Close
				} else {
					f, err := os.Create(filepath.Join(dir, fmt.Sprintf("local-%d.otf2", s)))
					if err != nil {
						b.Error(err)
						return
					}
					w := otf2.NewWriter(f)
					write = func(e []trace.Event) error { return w.WriteEvents(0, e) }
					finish = func() error {
						if err := w.Close(); err != nil {
							return err
						}
						return f.Close()
					}
				}
				const batch = 512
				for done := 0; done < per; {
					lo := done % len(evs)
					hi := lo + batch
					if hi > len(evs) {
						hi = len(evs)
					}
					if hi-lo > per-done {
						hi = lo + per - done
					}
					if err := write(evs[lo:hi]); err != nil {
						b.Error(err)
						return
					}
					done += hi - lo
				}
				if err := finish(); err != nil {
					b.Error(err)
				}
			}(s)
		}
		wg.Wait()
		b.StopTimer()
		if socket {
			if err := srv.Close(); err != nil {
				b.Fatal(err)
			}
		}
		written := int64(per) * int64(streams)
		var archiveBytes int64
		if entries, err := os.ReadDir(dir); err == nil {
			for _, e := range entries {
				if strings.HasSuffix(e.Name(), ".otf2") {
					if fi, err := e.Info(); err == nil {
						archiveBytes += fi.Size()
					}
				}
			}
		}
		if written > 0 {
			b.ReportMetric(float64(archiveBytes)/float64(written), "bytes/event")
			if s := b.Elapsed().Seconds(); s > 0 {
				b.ReportMetric(float64(written)/s, "events/sec")
			}
		}
	}
}

// benchNetReconnect measures event shipping throughput through one
// mid-stream connection loss per stream: fault injection severs each
// stream's first connection around the midpoint of the expected bytes,
// forcing a reconnect + byte-exact resume inside the timed region. The
// delta against net/write/socket is the reconnect path itself — redial,
// resume handshake, and replay of the unacknowledged suffix. Reported
// resumes confirm the sever actually fired (calibration runs too small
// to reach the sever point ship clean and report 0).
func benchNetReconnect(streams, tasksPerThread int) func(*testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		in := archiveFor(streams, tasksPerThread)
		dir, err := os.MkdirTemp("", "scorep-bench-net")
		if err != nil {
			b.Fatal(err)
		}
		defer os.RemoveAll(dir)

		srv, err := sink.NewServer(dir)
		if err != nil {
			b.Fatal(err)
		}
		sock := filepath.Join(dir, "d.sock")
		ln, err := net.Listen("unix", sock)
		if err != nil {
			b.Fatal(err)
		}
		go srv.Serve(ln)

		per := (b.N + streams - 1) / streams
		// ~6 bytes/event on the wire: sever near the midpoint, but never
		// inside the handshake of a tiny calibration run.
		sever := int64(per) * 3
		if sever < 4096 {
			sever = 4096
		}
		var resumes atomic.Int64
		var wg sync.WaitGroup
		b.ResetTimer()
		for s := 0; s < streams; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				evs := in.tr.Threads[s]
				var dials atomic.Int64
				cl, err := sink.NewClient(func() (net.Conn, error) {
					c, err := net.Dial("unix", sock)
					if err != nil {
						return nil, err
					}
					if dials.Add(1) == 1 {
						// Distinct per-stream sever points keep the
						// reconnect storms from synchronizing.
						return faultinject.NewConn(c, faultinject.SeverWriteAfter(sever+701*int64(s))), nil
					}
					return c, nil
				}, sink.WithStreamID(fmt.Sprintf("r%d", s)),
					sink.WithReconnect(8, time.Millisecond, 10*time.Second))
				if err != nil {
					b.Error(err)
					return
				}
				const batch = 512
				for done := 0; done < per; {
					lo := done % len(evs)
					hi := lo + batch
					if hi > len(evs) {
						hi = len(evs)
					}
					if hi-lo > per-done {
						hi = lo + per - done
					}
					if err := cl.WriteEvents(0, evs[lo:hi]); err != nil {
						b.Error(err)
						return
					}
					done += hi - lo
				}
				if err := cl.Close(); err != nil {
					b.Error(err)
					return
				}
				resumes.Add(cl.Resumes())
			}(s)
		}
		wg.Wait()
		b.StopTimer()
		if err := srv.Close(); err != nil {
			b.Fatal(err)
		}
		written := int64(per) * int64(streams)
		if written > 0 {
			if s := b.Elapsed().Seconds(); s > 0 {
				b.ReportMetric(float64(written)/s, "events/sec")
			}
			b.ReportMetric(float64(resumes.Load()), "resumes")
		}
	}
}

// traceTimeBounds returns the earliest and latest event timestamps.
func traceTimeBounds(tr *trace.Trace) (lo, hi int64) {
	first := true
	for _, evs := range tr.Threads {
		for _, ev := range evs {
			if first || ev.Time < lo {
				lo = ev.Time
			}
			if first || ev.Time > hi {
				hi = ev.Time
			}
			first = false
		}
	}
	return lo, hi
}

// benchArchiveBottlenecks measures the out-of-core bottleneck analysis
// (wait-state classification, critical path, what-if savings) over the
// archive; one op is one full pass. workers == 1 is the sequential
// baseline the parallel variant is compared against — the results are
// identical, only the wall clock differs.
func benchArchiveBottlenecks(workers, gomaxprocs, tasksPerThread int) func(*testing.B) {
	return func(b *testing.B) {
		prev := runtime.GOMAXPROCS(gomaxprocs)
		defer runtime.GOMAXPROCS(prev)
		b.ReportAllocs()
		in := archiveFor(4, tasksPerThread)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := otf2.AnalyzeBottlenecks(bytes.NewReader(in.data), otf2.Query{}, workers); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		reportPerEvent(b, in.events)
	}
}

// benchArchiveSeek measures random access into a v2 archive via the
// footer index: one op is one Seek to an event chunk plus a full decode
// of that chunk — the unit cost a time-window query pays per matching
// chunk. Chunks are visited round-robin so every op re-seeks.
func benchArchiveSeek(tasksPerThread int) func(*testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		in := archiveFor(4, tasksPerThread)
		ix, err := otf2.ReadIndex(bytes.NewReader(in.data))
		if err != nil {
			b.Fatal(err)
		}
		type tchunk struct {
			tid int
			ref otf2.ChunkRef
		}
		var chunks []tchunk
		for _, th := range ix.Threads {
			for _, c := range th.Chunks {
				chunks = append(chunks, tchunk{th.Thread, c})
			}
		}
		if len(chunks) == 0 {
			b.Fatal("archive has no indexed event chunks")
		}
		rd, err := otf2.NewReader(bytes.NewReader(in.data), region.NewRegistry())
		if err != nil {
			b.Fatal(err)
		}
		if err := rd.PrimeDefinitions(ix.DefOffsets); err != nil {
			b.Fatal(err)
		}
		var decoded int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c := chunks[i%len(chunks)]
			if err := rd.Seek(c.tid, c.ref); err != nil {
				b.Fatal(err)
			}
			for e := uint64(0); e < c.ref.Events; e++ {
				if _, _, err := rd.Next(); err != nil {
					b.Fatal(err)
				}
			}
			decoded += int64(c.ref.Events)
		}
		b.StopTimer()
		if decoded > 0 {
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(decoded), "ns/event")
			if s := b.Elapsed().Seconds(); s > 0 {
				b.ReportMetric(float64(decoded)/s, "events/sec")
			}
		}
	}
}

// benchArchiveAnalyzeWindowed measures a time-window query over an
// indexed archive: one op is one AnalyzeQuery of the middle decile of
// the trace's time span — the index prunes the non-matching chunks, so
// this should cost a fraction of a full stream/analyze pass. The
// chunk-read-frac metric records how large that fraction was.
func benchArchiveAnalyzeWindowed(workers, gomaxprocs, tasksPerThread int, variant string) func(*testing.B) {
	return func(b *testing.B) {
		prev := runtime.GOMAXPROCS(gomaxprocs)
		defer runtime.GOMAXPROCS(prev)
		b.ReportAllocs()
		in := archiveVariant(4, tasksPerThread, variant)
		lo, hi := traceTimeBounds(in.tr)
		span := hi - lo
		q := otf2.Query{Windowed: true, MinTime: lo + span*45/100, MaxTime: lo + span*55/100}
		var st otf2.QueryStats
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, s, err := otf2.AnalyzeQuery(bytes.NewReader(in.data), q, workers)
			if err != nil {
				b.Fatal(err)
			}
			st = s
		}
		b.StopTimer()
		if st.ChunksTotal > 0 {
			b.ReportMetric(float64(st.ChunksRead)/float64(st.ChunksTotal), "chunk-read-frac")
		}
	}
}

// reportPerEvent derives per-event metrics for whole-archive ops.
func reportPerEvent(b *testing.B, events int) {
	if b.N == 0 || events == 0 {
		return
	}
	total := float64(b.N) * float64(events)
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/total, "ns/event")
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(total/s, "events/sec")
	}
}

var kernelSink uint64

// benchFigure runs one BOTS kernel per op in the given listener
// configuration — the shape of the paper's Fig. 13/14/15 experiments.
func benchFigure(kernel bots.Kernel, threads int, cfg string) func(*testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		var sink uint64
		for i := 0; i < b.N; i++ {
			l, fin := newListener(cfg)
			rt := omp.NewRuntime(l)
			sink += kernel(rt, threads)
			fin()
		}
		kernelSink += sink
	}
}

// buildSpecs assembles the benchmark list.
func buildSpecs(quick bool) []spec {
	var specs []spec
	add := func(name string, hot, q bool, fn func(*testing.B)) {
		specs = append(specs, spec{name: name, hot: hot, quick: q, fn: fn})
	}

	// Microbenchmarks of the profiling engine.
	add("micro/enter-exit/core", true, true, benchMicroEnterExit)
	add("micro/task/core", true, true, benchMicroTask)

	// Per-event path through the runtime, per listener configuration.
	for _, cfg := range []string{"uninst", "profile", "profile+filter", "trace", "profile+trace"} {
		add("event/enter-exit/"+cfg, cfg != "uninst", true, benchEnterExit(cfg))
	}
	for _, cfg := range []string{"uninst", "profile", "profile+trace"} {
		add("event/task-inline/"+cfg, cfg != "uninst", true, benchTaskInline(cfg))
	}
	for _, cfg := range []string{"uninst", "profile+trace"} {
		add("event/task-spawn/"+cfg, cfg != "uninst", true, benchTaskSpawn(cfg))
	}

	// Streaming record incl. binary encoding, flight-recorder
	// steady-state recording, and the clock.
	add("stream/record", true, true, benchStreamRecord)
	add("flight/record", true, true, benchFlightRecord)
	add("clock/now", false, true, benchClock(false))
	add("clock/now-zero-value", false, true, benchClock(true))

	// Archive pipeline throughput: concurrent writes into one Writer,
	// whole-archive decode, and out-of-core analysis sequential vs
	// parallel, at GOMAXPROCS 1 and 4. The tasks= label pins the input
	// size (quick inputs must not be compared against full baselines);
	// full mode uses a >= 1M-event archive (4 threads x 65536 tasks x 4
	// lifecycle events + envelope).
	streamTasks := 65536
	if quick {
		streamTasks = 4096
	}
	st := fmt.Sprintf("tasks=%d", streamTasks)
	add("stream/write/threads=1/cpu=1/"+st, false, true, benchArchiveWrite(1, 1, streamTasks))
	add("stream/write/threads=4/cpu=1/"+st, false, true, benchArchiveWrite(4, 1, streamTasks))
	add("stream/write/threads=4/cpu=4/"+st, false, true, benchArchiveWrite(4, 4, streamTasks))
	// Format variants of the single-thread write: v1 is the pre-index
	// encoding (the -check-write-gate reference — measured in the same
	// run, so the comparison is machine-independent), compressed is v2
	// with flate event chunks (bytes/event shows the size win, ns/op the
	// CPU price).
	add("stream/write/v1/threads=1/cpu=1/"+st, false, true, benchArchiveWrite(1, 1, streamTasks, otf2.WithVersion(1)))
	add("stream/write/compressed/threads=1/cpu=1/"+st, false, true, benchArchiveWrite(1, 1, streamTasks, otf2.WithCompression(otf2.CompressionFlate)))
	add("stream/decode/seq/cpu=1/"+st, false, true, benchArchiveDecode(1, 1, streamTasks))
	add("stream/decode/par/workers=4/cpu=4/"+st, false, true, benchArchiveDecode(4, 4, streamTasks))
	add("stream/analyze/seq/cpu=1/"+st, false, true, benchArchiveAnalyze(1, 1, streamTasks))
	add("stream/analyze/par/workers=4/cpu=1/"+st, false, true, benchArchiveAnalyze(4, 1, streamTasks))
	add("stream/analyze/par/workers=4/cpu=4/"+st, false, true, benchArchiveAnalyze(4, 4, streamTasks))
	// Out-of-core bottleneck analysis over the same archive (full mode:
	// >= 1M events): per-event cost of the wait-state classification and
	// critical-path construction on top of the plain decode+analyze pass.
	add("stream/analyze/bottlenecks/seq/cpu=1/"+st, false, true, benchArchiveBottlenecks(1, 1, streamTasks))
	add("stream/analyze/bottlenecks/par/workers=4/cpu=4/"+st, false, true, benchArchiveBottlenecks(4, 4, streamTasks))
	// Seekable-archive benches: random chunk access via the footer index
	// and the windowed query path it exists for.
	add("stream/seek/indexed/"+st, false, true, benchArchiveSeek(streamTasks))
	add("stream/analyze/windowed/workers=1/cpu=1/"+st, false, true, benchArchiveAnalyzeWindowed(1, 1, streamTasks, "v2"))
	add("stream/analyze/windowed/workers=4/cpu=4/"+st, false, true, benchArchiveAnalyzeWindowed(4, 4, streamTasks, "v2"))
	add("stream/analyze/windowed/flate/workers=4/cpu=4/"+st, false, true, benchArchiveAnalyzeWindowed(4, 4, streamTasks, "flate"))

	// Network sink throughput: the same encoded event stream, shipped
	// either straight to a local file or framed over a unix socket into
	// the daemon's sharded ingest (one archive per stream). The file
	// variant is the same-run local baseline for the socket overhead;
	// streams=4 shows the sharded ingest scaling without a cross-stream
	// lock.
	netTasks := 16384
	if quick {
		netTasks = 2048
	}
	nt := fmt.Sprintf("tasks=%d", netTasks)
	add("net/write/file/streams=1/"+nt, false, true, benchNetWrite(1, false, netTasks))
	add("net/write/socket/streams=1/"+nt, false, true, benchNetWrite(1, true, netTasks))
	add("net/write/file/streams=4/"+nt, false, true, benchNetWrite(4, false, netTasks))
	add("net/write/socket/streams=4/"+nt, false, true, benchNetWrite(4, true, netTasks))
	add("net/reconnect/streams=1/"+nt, false, true, benchNetReconnect(1, netTasks))
	add("net/reconnect/streams=4/"+nt, false, true, benchNetReconnect(4, netTasks))

	// Figure experiments on the BOTS codes.
	size := bots.SizeSmall
	threads := []int{1, 4}
	fig13Codes := bots.All
	fig1415Codes := bots.CutoffCodes()
	fig15Threads := []int{1, 2, 4, 8}
	if quick {
		size = bots.SizeTiny
		threads = []int{1, 2}
		fig13Codes = []*bots.Spec{bots.FibSpec, bots.NQueensSpec}
		fig1415Codes = []*bots.Spec{bots.FibSpec}
		fig15Threads = []int{1, 2}
	}
	// Figure bench names embed the input size: quick mode (tiny) must
	// not be compared against a full-mode (small) baseline entry.
	for _, sp := range fig13Codes {
		kernel := sp.Prepare(size, sp.HasCutoff)
		for _, th := range threads {
			for _, cfg := range []string{"uninst", "profile", "profile+trace-mem"} {
				label := map[string]string{"uninst": "uninst", "profile": "inst", "profile+trace-mem": "inst+trace"}[cfg]
				add(fmt.Sprintf("fig13/%s/size=%s/threads=%d/%s", sp.Name, size, th, label), false, true,
					benchFigure(kernel, th, cfg))
			}
		}
	}
	for _, sp := range fig1415Codes {
		kernel := sp.Prepare(size, false)
		for _, th := range threads {
			for _, cfg := range []string{"uninst", "profile"} {
				label := map[string]string{"uninst": "uninst", "profile": "inst"}[cfg]
				add(fmt.Sprintf("fig14/%s/size=%s/threads=%d/%s", sp.Name, size, th, label), false, true,
					benchFigure(kernel, th, cfg))
			}
		}
		for _, th := range fig15Threads {
			add(fmt.Sprintf("fig15/%s/size=%s/threads=%d", sp.Name, size, th), false, true,
				benchFigure(kernel, th, "uninst"))
		}
	}
	return specs
}

// runSpec executes one spec reps times and keeps the minimum ns/op and
// minimum allocs/op (see Result). A repetition that fails (b.Fatal,
// which makes testing.Benchmark return N == 0) is skipped; if no
// repetition succeeds, runSpec errors — a zero-value Result would
// otherwise read as a perfect 0 allocs/op score and mask exactly the
// regressions the -check-allocs gate exists to catch.
func runSpec(s spec, reps int) (Result, error) {
	res := Result{Name: s.name}
	valid := false
	for r := 0; r < reps; r++ {
		br := testing.Benchmark(s.fn)
		if br.N == 0 {
			continue
		}
		ns := float64(br.T.Nanoseconds()) / float64(br.N)
		if !valid || ns < res.NsPerOp {
			res.NsPerOp = ns
			res.BytesPerOp = br.AllocedBytesPerOp()
			res.N = br.N
			if len(br.Extra) > 0 {
				res.Metrics = make(map[string]float64, len(br.Extra))
				for k, v := range br.Extra {
					res.Metrics[k] = v
				}
			}
		}
		if !valid || br.AllocsPerOp() < res.AllocsPerOp {
			res.AllocsPerOp = br.AllocsPerOp()
		}
		valid = true
	}
	if !valid {
		return res, fmt.Errorf("benchmark %s produced no valid repetition", s.name)
	}
	return res, nil
}

func main() {
	testing.Init()
	quick := flag.Bool("quick", false, "small inputs, fewer codes/reps (the CI mode)")
	out := flag.String("out", "", "write the JSON report to this file (default stdout)")
	baseline := flag.String("baseline", "", "baseline JSON to compute deltas against")
	benchRe := flag.String("bench", "", "only run benchmarks matching this regexp")
	reps := flag.Int("reps", 0, "repetitions per benchmark (default 3, quick 2)")
	benchtime := flag.String("benchtime", "", "per-run duration (default 300ms, quick 60ms)")
	checkAllocs := flag.Bool("check-allocs", false, "exit 1 when a hot-path bench allocates more per op than the baseline")
	checkWriteGate := flag.Bool("check-write-gate", false, "exit 1 when single-thread v2 write throughput falls below 95% of the same-run v1 throughput")
	flag.Parse()

	if *reps == 0 {
		*reps = 3
		if *quick {
			*reps = 2
		}
	}
	if *benchtime == "" {
		*benchtime = "300ms"
		if *quick {
			*benchtime = "60ms"
		}
	}
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		fmt.Fprintf(os.Stderr, "scorep-bench: bad -benchtime: %v\n", err)
		os.Exit(2)
	}

	var filter *regexp.Regexp
	if *benchRe != "" {
		var err error
		if filter, err = regexp.Compile(*benchRe); err != nil {
			fmt.Fprintf(os.Stderr, "scorep-bench: bad -bench: %v\n", err)
			os.Exit(2)
		}
	}

	specs := buildSpecs(*quick)
	file := File{
		Schema:     "scorep-bench/1",
		Quick:      *quick,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		BenchTime:  *benchtime,
		Reps:       *reps,
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
	}
	hot := make(map[string]bool)
	for _, s := range specs {
		if *quick && !s.quick {
			continue
		}
		if filter != nil && !filter.MatchString(s.name) {
			continue
		}
		r, err := runSpec(s, *reps)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scorep-bench: %v\n", err)
			os.Exit(2)
		}
		hot[s.name] = s.hot
		file.Results = append(file.Results, r)
		fmt.Fprintf(os.Stderr, "%-44s %12.1f ns/op %6d allocs/op\n", r.Name, r.NsPerOp, r.AllocsPerOp)
	}

	var regressions []string
	if *baseline != "" {
		base, err := readBaseline(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scorep-bench: baseline: %v\n", err)
			os.Exit(2)
		}
		file.BaselineFile = *baseline
		byName := make(map[string]Result, len(base.Results))
		for _, r := range base.Results {
			byName[r.Name] = r
		}
		for _, r := range file.Results {
			b, ok := byName[r.Name]
			if !ok {
				continue
			}
			d := Delta{
				Name:        r.Name,
				BaseNsPerOp: b.NsPerOp,
				NsPerOp:     r.NsPerOp,
				BaseAllocs:  b.AllocsPerOp,
				Allocs:      r.AllocsPerOp,
				Hot:         hot[r.Name],
			}
			if b.NsPerOp > 0 {
				d.NsDeltaPct = (r.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
			}
			file.Deltas = append(file.Deltas, d)
			if d.Hot && d.Allocs > d.BaseAllocs {
				regressions = append(regressions,
					fmt.Sprintf("%s: %d allocs/op, baseline %d", d.Name, d.Allocs, d.BaseAllocs))
			}
		}
		sort.Slice(file.Deltas, func(i, j int) bool { return file.Deltas[i].Name < file.Deltas[j].Name })
	}

	enc, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "scorep-bench: encode: %v\n", err)
		os.Exit(2)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "scorep-bench: write %s: %v\n", *out, err)
		os.Exit(2)
	}

	failing := false
	if *checkAllocs && len(regressions) > 0 {
		fmt.Fprintln(os.Stderr, "scorep-bench: hot-path allocation regressions:")
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "  "+r)
		}
		failing = true
	}
	if *checkWriteGate {
		gateTasks := 65536
		if *quick {
			gateTasks = 4096
		}
		ratios := runWriteGate(gateTasks, 15)
		if len(ratios) == 0 {
			fmt.Fprintln(os.Stderr, "scorep-bench: write gate produced no valid measurement")
			failing = true
		} else {
			// Gate on the 75th percentile of the paired ratios: noise on a
			// shared runner only drags individual rounds down (a busy
			// neighbour can slow one side of a pair, never speed it up), so
			// a healthy v2 writer shows near-1.0 ratios in its least-noisy
			// rounds, while a genuine encode-path regression shifts every
			// round down — including the upper quartile.
			p75 := ratios[(len(ratios)*3)/4]
			verdict := "ok"
			if p75 < 0.95 {
				verdict = "FAIL (v2 write throughput below 95% of v1)"
				failing = true
			}
			fmt.Fprintf(os.Stderr, "write gate %s: p75 v2:v1 throughput ratio %.3f, median %.3f (rounds sorted:",
				verdict, p75, ratios[len(ratios)/2])
			for _, r := range ratios {
				fmt.Fprintf(os.Stderr, " %.2f", r)
			}
			fmt.Fprintln(os.Stderr, ")")
		}
	}
	if failing {
		os.Exit(1)
	}
}

// runWriteGate measures the single-thread write cost of the v2
// (indexed) and v1 (plain) encodings in paired fixed-work rounds — each
// round times the exact same event sequence through a fresh v1 writer,
// then a fresh v2 writer, back to back — and returns the per-round
// v2:v1 throughput ratios sorted ascending; the caller gates on the
// median. Fixed work keeps the two timings of a round tens of
// milliseconds apart so both sample the same noise window (frequency
// scaling, co-tenant load), and the median over many short rounds
// discards the rounds where noise shifted in between — where a single
// back-to-back block comparison, let alone a wall-clock number
// committed from another machine, flakes.
func runWriteGate(tasks, rounds int) []float64 {
	in := archiveFor(1, tasks)
	const events = 4 << 20
	// One untimed warmup per side: input build, pool and branch state.
	writeGateNs(in, events/4)
	writeGateNs(in, events/4, otf2.WithVersion(1))
	ratios := make([]float64, 0, rounds)
	for r := 0; r < rounds; r++ {
		v1ns := writeGateNs(in, events, otf2.WithVersion(1))
		v2ns := writeGateNs(in, events)
		if v1ns > 0 && v2ns > 0 {
			ratios = append(ratios, v1ns/v2ns)
		}
	}
	sort.Float64s(ratios)
	return ratios
}

// writeGateNs times writing `events` events of in's single-thread event
// sequence (batches of 512, cycling) through a fresh Writer configured
// by opts, excluding Close (the footer index write is a per-archive
// cost, not a per-event one). Returns 0 on write failure.
func writeGateNs(in *archiveInput, events int, opts ...otf2.WriterOption) float64 {
	cw := &countingWriter{}
	w := otf2.NewWriter(cw, opts...)
	evs := in.tr.Threads[0]
	const batch = 512
	start := time.Now()
	for done := 0; done < events; {
		lo := done % len(evs)
		hi := lo + batch
		if hi > len(evs) {
			hi = len(evs)
		}
		if hi-lo > events-done {
			hi = lo + events - done
		}
		if err := w.WriteEvents(0, evs[lo:hi]); err != nil {
			return 0
		}
		done += hi - lo
	}
	ns := float64(time.Since(start).Nanoseconds())
	if w.Close() != nil {
		return 0
	}
	return ns
}

func readBaseline(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if f.Schema != "scorep-bench/1" {
		return nil, fmt.Errorf("%s: unknown schema %q", path, f.Schema)
	}
	return &f, nil
}
