// Command scorep-daemon is the multi-process measurement service: it
// accepts trace streams from many instrumented processes at once (the
// WithRemoteTrace / SCOREP_TRACE_SINK client side), writes one archive
// shard per stream into the experiment directory, and on shutdown seals
// the merged fleet experiment (trace-<id>.otf2 shards + meta.json) for
// scorep-report/scorep-analyze.
//
// Ingest is sharded: each stream has its own goroutine and file, so a
// slow or crashing client never stalls the others; a severed connection
// keeps the intact prefix of that shard, salvageable like any truncated
// archive. A v2 client reconnects and resumes a severed stream
// byte-exactly, and a daemon restarted over an existing experiment
// directory recovers every shard's intact prefix from the stream
// journal and accepts resumes at it — a crashed daemon costs nothing a
// client's replay window covers.
//
// Usage:
//
//	scorep-daemon -listen unix:///tmp/scorep.sock -exp scorep-fleet
//	scorep-daemon -listen tcp://:7007 -exp scorep-fleet -streams 2
//
// The daemon serves until SIGINT/SIGTERM, or — with -streams N — until
// N streams have ended (sealed streams recovered from a previous
// daemon's journal count). On the first signal it drains: no new
// connections, in-flight streams get -drain-timeout to finish, then
// stragglers are severed (their shards keep the durable prefix,
// resumable by a future daemon). A second signal severs immediately.
// Exit status 1 reports a server-side ingest failure (shard I/O).
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	scorep "repro"
	"repro/internal/sink"
)

func main() {
	var (
		listen    = flag.String("listen", "unix:///tmp/scorep-daemon.sock", "address to accept streams on (unix:///path.sock, tcp://host:port)")
		expDir    = flag.String("exp", "scorep-fleet", "fleet experiment directory (one trace shard per stream + meta.json)")
		streams   = flag.Int("streams", 0, "exit after this many streams ended (0: serve until SIGINT/SIGTERM)")
		drain     = flag.Duration("drain-timeout", 10*time.Second, "grace for in-flight streams on shutdown before severing them (0: sever immediately)")
		idle      = flag.Duration("idle-timeout", 0, "seal a stream that sends nothing for this long (0: never; wedged clients hold their shard open forever)")
		handshake = flag.Duration("handshake-timeout", 10*time.Second, "deadline for a new connection's handshake")
		quiet     = flag.Bool("quiet", false, "suppress per-stream log lines")
	)
	flag.Parse()

	network, address, err := sink.SplitAddr(*listen)
	if err != nil {
		fail(err)
	}
	if network == "unix" {
		// A stale socket file from a killed daemon would fail the bind.
		_ = os.Remove(address)
	}

	logf := func(format string, args ...any) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "scorep-daemon: "+format+"\n", args...)
		}
	}

	var (
		ended    atomic.Int64
		shutdown = make(chan struct{})
		once     sync.Once
	)
	stop := func() { once.Do(func() { close(shutdown) }) }

	opts := []sink.ServerOption{
		sink.WithLog(logf),
		sink.WithHandshakeTimeout(*handshake),
		sink.WithStreamDone(func(sink.StreamInfo) {
			if *streams > 0 && ended.Add(1) >= int64(*streams) {
				stop()
			}
		}),
	}
	if *idle > 0 {
		opts = append(opts, sink.WithIdleTimeout(*idle))
	}
	srv, err := sink.NewServer(*expDir, opts...)
	if err != nil {
		fail(err)
	}
	if n := srv.Recovered(); n > 0 {
		logf("recovered %d stream(s) from a previous daemon's journal", n)
		// Streams a previous daemon already sealed count toward
		// -streams: a restarted daemon with the same flag exits once
		// the fleet total is reached, not N additional streams later.
		for _, st := range srv.Streams() {
			if st.Sealed && *streams > 0 && ended.Add(1) >= int64(*streams) {
				stop()
			}
		}
	}

	ln, err := net.Listen(network, address)
	if err != nil {
		fail(err)
	}
	logf("listening on %s, experiment %s", *listen, *expDir)

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		grace := *drain
		select {
		case <-sig:
			logf("shutdown: draining in-flight streams (up to %s; signal again to sever now)", grace)
		case <-shutdown:
			// -streams satisfied: every counted stream already sealed,
			// the drain only covers connection teardown.
		}
		go func() {
			<-sig
			logf("second signal: severing in-flight streams")
			_ = srv.Shutdown(0)
		}()
		_ = srv.Shutdown(grace)
	}()

	start := time.Now()
	serveErr := srv.Serve(ln)
	_ = srv.Shutdown(0) // idempotent; covers the -streams path where Serve returned first

	infos := srv.Streams()
	shards := make([]scorep.TraceShard, len(infos))
	complete := 0
	for i, st := range infos {
		shards[i] = scorep.TraceShard{
			File:          st.File,
			Stream:        st.ID,
			Bytes:         st.Bytes,
			DroppedEvents: st.DroppedEvents,
			GapBytes:      st.GapBytes,
			Resumes:       st.Resumes,
			Complete:      st.Complete,
		}
		if st.Complete {
			complete++
		}
	}
	if err := scorep.SaveFleetExperiment(*expDir, time.Since(start), shards); err != nil {
		fail(err)
	}
	fmt.Printf("sealed experiment %s (%d shards, %d complete)\n", *expDir, len(shards), complete)

	if serveErr != nil {
		fail(serveErr)
	}
	if err := srv.Err(); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "scorep-daemon: %v\n", err)
	os.Exit(1)
}
