// Command scorep-daemon is the multi-process measurement service: it
// accepts trace streams from many instrumented processes at once (the
// WithRemoteTrace / SCOREP_TRACE_SINK client side), writes one archive
// shard per stream into the experiment directory, and on shutdown seals
// the merged fleet experiment (trace-<id>.otf2 shards + meta.json) for
// scorep-report/scorep-analyze.
//
// Ingest is sharded: each stream has its own goroutine and file, so a
// slow or crashing client never stalls the others; a severed connection
// keeps the intact prefix of that shard, salvageable like any truncated
// archive.
//
// Usage:
//
//	scorep-daemon -listen unix:///tmp/scorep.sock -exp scorep-fleet
//	scorep-daemon -listen tcp://:7007 -exp scorep-fleet -streams 2
//
// The daemon serves until SIGINT/SIGTERM, or — with -streams N — until
// N streams have ended, then seals the experiment and exits. Exit
// status 1 reports a server-side ingest failure (shard I/O).
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	scorep "repro"
	"repro/internal/sink"
)

func main() {
	var (
		listen  = flag.String("listen", "unix:///tmp/scorep-daemon.sock", "address to accept streams on (unix:///path.sock, tcp://host:port)")
		expDir  = flag.String("exp", "scorep-fleet", "fleet experiment directory (one trace shard per stream + meta.json)")
		streams = flag.Int("streams", 0, "exit after this many streams ended (0: serve until SIGINT/SIGTERM)")
		quiet   = flag.Bool("quiet", false, "suppress per-stream log lines")
	)
	flag.Parse()

	network, address, err := sink.SplitAddr(*listen)
	if err != nil {
		fail(err)
	}
	if network == "unix" {
		// A stale socket file from a killed daemon would fail the bind.
		_ = os.Remove(address)
	}

	logf := func(format string, args ...any) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "scorep-daemon: "+format+"\n", args...)
		}
	}

	var (
		ended    atomic.Int64
		shutdown = make(chan struct{})
		once     sync.Once
	)
	stop := func() { once.Do(func() { close(shutdown) }) }

	srv, err := sink.NewServer(*expDir, sink.WithLog(logf), sink.WithStreamDone(func(sink.StreamInfo) {
		if *streams > 0 && ended.Add(1) >= int64(*streams) {
			stop()
		}
	}))
	if err != nil {
		fail(err)
	}

	ln, err := net.Listen(network, address)
	if err != nil {
		fail(err)
	}
	logf("listening on %s, experiment %s", *listen, *expDir)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		select {
		case <-sig:
		case <-shutdown:
		}
		_ = srv.Close() // stops the accept loop and waits for in-flight streams
	}()

	start := time.Now()
	serveErr := srv.Serve(ln)
	_ = srv.Close() // idempotent; covers the -streams path where Serve returned first

	infos := srv.Streams()
	shards := make([]scorep.TraceShard, len(infos))
	complete := 0
	for i, st := range infos {
		shards[i] = scorep.TraceShard{
			File:          st.File,
			Stream:        st.ID,
			Bytes:         st.Bytes,
			DroppedEvents: st.DroppedEvents,
			Complete:      st.Complete,
		}
		if st.Complete {
			complete++
		}
	}
	if err := scorep.SaveFleetExperiment(*expDir, time.Since(start), shards); err != nil {
		fail(err)
	}
	fmt.Printf("sealed experiment %s (%d shards, %d complete)\n", *expDir, len(shards), complete)

	if serveErr != nil {
		fail(serveErr)
	}
	if err := srv.Err(); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "scorep-daemon: %v\n", err)
	os.Exit(1)
}
