// Command scorep-analyze performs automatic diagnosis of tasking
// inefficiencies — the Scalasca-style analysis the paper motivates.
//
// It analyzes a saved profile report:
//
//	scorep-analyze -in report.json [-json]
//
// a saved event trace (JSONL or binary otf2-style archive by
// extension; archives are analyzed streaming, in bounded memory, so
// they may be far larger than RAM — by default in parallel, with one
// decode/analysis worker per processor; -parallel pins the worker
// count, and -parallel 1 forces the sequential path. The analysis is
// identical at every worker count):
//
//	scorep-analyze -trace trace.otf2 [-parallel 4] [-bottlenecks] [-json]
//	scorep-analyze -trace trace.jsonl
//
// -bottlenecks additionally runs the automatic bottleneck analysis
// (wait-state classification, task-graph critical path with per-region
// what-if savings — see the "Bottleneck analysis" section of the
// package documentation) and reports its findings alongside the trace
// metrics. It applies to every trace-bearing subject (-trace, -exp,
// -code) and honors -window, -tids and -parallel; the result is
// identical at every worker count.
//
// -json emits everything the invocation analyzed as one JSON object
// in every mode: "findings" (profile findings plus, with -bottlenecks,
// the bottleneck findings), "traceAnalysis", "bottlenecks", and — for
// a fleet experiment — "shards" and "fleet".
//
// Trace analysis (-trace or -exp input) can be clipped to a slice of
// the recording with -window t0:t1 (inclusive bounds, either side
// open) and -tids 0,2,5 (thread subset; the run's own thread count is
// -threads). On a format v2 archive the footer index makes this
// O(matching chunks): only chunks whose indexed time bounds and thread
// can match are read. The result is always identical to analyzing the
// full trace filtered to the same window:
//
//	scorep-analyze -trace trace.otf2 -window 1000:2000 -tids 0,1 [-json]
//
// an experiment archive (profile findings plus trace metrics; a trace
// truncated by a crashed run is salvaged to its intact prefix; a fleet
// experiment sealed by scorep-daemon reports each process's shard and
// the fleet-wide aggregate — with -bottlenecks, the per-shard
// bottleneck analyses and the fleet bottleneck summary too):
//
//	scorep-analyze -exp scorep-run [-window :5000] [-bottlenecks]
//	scorep-analyze -exp scorep-fleet [-bottlenecks] [-json]
//
// or runs a BOTS code live through a profiling+tracing session and
// reports both the profile findings and the trace-derived management
// metrics (paper §VII), optionally saving the trace or the whole
// experiment (-compress stores the archive with flate-compressed
// event chunks):
//
//	scorep-analyze -code nqueens -size small -threads 4 [-cutoff]
//	               [-save-trace trace.otf2 [-compress]] [-exp scorep-run]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	scorep "repro"
	"repro/internal/bots"
	"repro/internal/cliq"
	"repro/internal/otf2"
	"repro/internal/stats"
)

// analysisJSON is the envelope -json emits: every analysis product of
// the selected subject in one object, with absent sections omitted.
// The same invocation at any -parallel setting produces byte-identical
// output.
type analysisJSON struct {
	Findings       []scorep.Finding           `json:"findings,omitempty"`
	FlightRecorder *scorep.FlightRecorderInfo `json:"flightRecorder,omitempty"`
	TraceAnalysis  *scorep.TraceAnalysis      `json:"traceAnalysis,omitempty"`
	Bottlenecks    *scorep.BottleneckAnalysis `json:"bottlenecks,omitempty"`
	Shards         []shardJSON                `json:"shards,omitempty"`
	Fleet          *fleetJSON                 `json:"fleet,omitempty"`
}

// shardJSON is one per-process trace shard of a fleet experiment.
type shardJSON struct {
	Stream      string                     `json:"stream"`
	File        string                     `json:"file"`
	Complete    bool                       `json:"complete"`
	Analysis    *scorep.TraceAnalysis      `json:"analysis"`
	Bottlenecks *scorep.BottleneckAnalysis `json:"bottlenecks,omitempty"`
}

// fleetJSON is the fleet-wide aggregate of a fleet experiment.
type fleetJSON struct {
	Analysis    *scorep.TraceAnalysis          `json:"analysis"`
	Bottlenecks *scorep.BottleneckFleetSummary `json:"bottlenecks,omitempty"`
}

func main() {
	rf := bots.RegisterRunFlags(flag.CommandLine, "")
	var (
		in          = flag.String("in", "", "saved report JSON to analyze")
		tracePath   = flag.String("trace", "", "saved event trace to analyze (.otf2 = binary archive, otherwise JSONL)")
		expDir      = flag.String("exp", "", "experiment directory: analyze it (without -code) or write the live run's archive to it (with -code)")
		saveTrace   = flag.String("save-trace", "", "save the live run's trace (format by extension)")
		parallel    = flag.Int("parallel", 0, "trace decode/analysis workers (0 = one per processor, 1 = sequential; results are identical)")
		asJSON      = flag.Bool("json", false, "emit the analysis as one JSON object instead of text")
		bottlenecks = flag.Bool("bottlenecks", false, "with a trace-bearing input: run the automatic bottleneck analysis (wait states, critical path, what-if savings)")
		window      = flag.String("window", "", "clip trace analysis to the inclusive time window t0:t1 (either bound may be empty)")
		tids        = flag.String("tids", "", "clip trace analysis to a comma-separated thread-ID subset")
		compress    = flag.Bool("compress", false, "with -save-trace to an .otf2 archive: flate-compress event chunks")
	)
	flag.Parse()

	// -in, -trace and -code each select an analysis subject (-exp joins
	// them as input only without -code); reject ambiguous combinations
	// instead of silently picking one.
	subjects := 0
	for _, set := range []bool{*in != "", *tracePath != "", rf.Code != ""} {
		if set {
			subjects++
		}
	}
	if subjects > 1 || (*expDir != "" && (*in != "" || *tracePath != "")) {
		fmt.Fprintln(os.Stderr, "conflicting inputs: pick one of -in, -trace, -exp or -code (only -exp combines with -code, as output)")
		os.Exit(2)
	}
	if *saveTrace != "" && rf.Code == "" {
		fmt.Fprintln(os.Stderr, "-save-trace only applies to live runs (-code)")
		os.Exit(2)
	}
	if *bottlenecks && *in != "" {
		fmt.Fprintln(os.Stderr, "-bottlenecks needs a trace (-trace, -exp or -code); a report (-in) holds no trace")
		os.Exit(2)
	}
	if flagWasSet("parallel") && *in != "" {
		fmt.Fprintln(os.Stderr, "-parallel only applies to trace analysis (-trace, -exp or -code); a report (-in) holds no trace")
		os.Exit(2)
	}
	if (*window != "" || *tids != "") && *tracePath == "" && (rf.Code != "" || *expDir == "") {
		fmt.Fprintln(os.Stderr, "-window and -tids only apply to saved trace analysis (-trace or -exp input)")
		os.Exit(2)
	}
	if *compress && (*saveTrace == "" || !otf2.IsArchivePath(*saveTrace)) {
		fmt.Fprintln(os.Stderr, "-compress only applies when saving a binary archive (-save-trace <file>.otf2)")
		os.Exit(2)
	}
	query, err := cliq.Build(*window, *tids, "tids")
	if err != nil {
		fail(err)
	}

	switch {
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		rep, err := scorep.ReadReportJSON(f)
		if err != nil {
			fail(err)
		}
		findings := scorep.AnalyzeReport(rep)
		if *asJSON {
			emitJSON(analysisJSON{Findings: findings})
			return
		}
		scorep.FormatFindings(os.Stdout, findings)

	case *tracePath != "":
		a, qst, warning, err := otf2.AnalyzeFileQuery(*tracePath, query, *parallel)
		if err != nil {
			fail(err)
		}
		warn(warning)
		if qst.Indexed && !query.All() {
			fmt.Fprintf(os.Stderr, "index: read %d of %d chunks\n", qst.ChunksRead, qst.ChunksTotal)
		}
		var b *scorep.BottleneckAnalysis
		if *bottlenecks {
			var bwarn string
			b, _, bwarn, err = otf2.AnalyzeFileBottlenecks(*tracePath, query, *parallel)
			if err != nil {
				fail(err)
			}
			if bwarn != warning {
				warn(bwarn)
			}
		}
		if *asJSON {
			out := analysisJSON{TraceAnalysis: a, Bottlenecks: b}
			if b != nil {
				out.Findings = b.Findings
			}
			emitJSON(out)
			return
		}
		a.Format(os.Stdout)
		if b != nil {
			fmt.Println()
			b.Format(os.Stdout)
		}

	case rf.Code == "" && *expDir != "":
		analyzeExperiment(*expDir, *parallel, query, *asJSON, *bottlenecks)

	case rf.Code != "":
		spec, size, err := rf.Resolve()
		if err != nil {
			fail(err)
		}

		// One session records profile and trace simultaneously
		// (Score-P's combined mode) and, with -exp, leaves the
		// experiment archive behind.
		opts := []scorep.Option{scorep.WithTracing(), scorep.WithAnalysisParallelism(*parallel)}
		if *expDir != "" {
			opts = append(opts, scorep.WithExperimentDirectory(*expDir))
		}
		s := scorep.NewSession(opts...)

		kernel := spec.Prepare(size, rf.Cutoff)
		result := kernel(s.Runtime(), rf.Threads)
		if want := spec.Expected(size); result != want {
			fail(fmt.Errorf("verification failed: %d != %d", result, want))
		}
		res, err := s.End()
		if err != nil {
			fail(err)
		}
		var b *scorep.BottleneckAnalysis
		if *bottlenecks {
			b = res.Bottlenecks()
		}

		if *asJSON {
			out := analysisJSON{TraceAnalysis: res.TraceAnalysis(), Bottlenecks: b}
			out.Findings = append(out.Findings, res.Findings()...)
			if b != nil {
				out.Findings = append(out.Findings, b.Findings...)
			}
			emitJSON(out)
		} else {
			fmt.Printf("== profile analysis: %s size=%s threads=%d cutoff=%v ==\n",
				spec.Name, rf.Size, rf.Threads, rf.Cutoff)
			scorep.FormatFindings(os.Stdout, res.Findings())

			fmt.Println()
			res.TraceAnalysis().Format(os.Stdout)
			if b != nil {
				fmt.Println()
				b.Format(os.Stdout)
			}
		}

		if *saveTrace != "" {
			var wopts []otf2.WriterOption
			if *compress {
				wopts = append(wopts, otf2.WithCompression(otf2.CompressionFlate))
			}
			if err := otf2.WriteFile(*saveTrace, res.Trace(), wopts...); err != nil {
				fail(err)
			}
			notef(*asJSON, "\nwrote %s (%d events)\n", *saveTrace, res.Trace().NumEvents())
		}
		if *expDir != "" {
			notef(*asJSON, "\nwrote experiment %s\n", *expDir)
		}

	default:
		fmt.Fprintln(os.Stderr, "need -in report.json, -trace <trace>, -exp <dir> or -code <bots code>")
		os.Exit(2)
	}
}

// analyzeExperiment reports everything an experiment archive holds:
// configuration summary, profile findings, trace metrics (clipped to
// the query when one was given) and — with bottlenecks — the automatic
// bottleneck analysis of every trace the experiment holds.
func analyzeExperiment(dir string, parallel int, query scorep.TraceQuery, asJSON, bottlenecks bool) {
	exp, err := scorep.OpenExperiment(dir)
	if err != nil {
		fail(err)
	}
	exp.AnalysisParallelism = parallel
	m := exp.Meta
	var out analysisJSON
	if !asJSON {
		fmt.Printf("== experiment %s ==\n", dir)
		fmt.Printf("config: profiling=%v tracing=%v scheduler=%s threads=%d tasks=%d wall=%s gomaxprocs=%d %s\n\n",
			m.Config.Profiling, m.Config.Tracing, m.Config.Scheduler,
			m.Threads, m.TasksCreated, stats.FormatNs(m.WallTimeNs), m.GOMAXPROCS, m.GoVersion)
	}
	if fr := m.FlightRecorder; fr != nil {
		// The trace is only the flight recorder's retained window; say
		// what was evicted before it so the analysis reads correctly.
		if asJSON {
			out.FlightRecorder = fr
		} else {
			fmt.Printf("flight recorder: ring=%dx%d retained-events=%d dropped-events=%d dropped-chunks=%d",
				fr.RingChunks, fr.ChunkEvents, fr.RetainedEvents, fr.DroppedEvents, fr.DroppedChunks)
			if fr.Trigger != "" {
				fmt.Printf(" trigger=%s", fr.Trigger)
			}
			fmt.Printf("\n\n")
		}
		if fr.Partial {
			warn(fmt.Sprintf("partial flight-recorder dump (%s): trace.otf2 holds only the intact prefix of the window", fr.Error))
		}
	}

	if m.HasProfile {
		findings, err := exp.Findings()
		if err != nil {
			fail(err)
		}
		if asJSON {
			out.Findings = append(out.Findings, findings...)
		} else {
			scorep.FormatFindings(os.Stdout, findings)
			fmt.Println()
		}
	}
	if m.HasTrace {
		var a *scorep.TraceAnalysis
		var err error
		if query.All() {
			a, err = exp.TraceAnalysis()
		} else {
			var qst scorep.TraceQueryStats
			a, qst, err = exp.TraceAnalysisQuery(query)
			if err == nil && qst.Indexed {
				fmt.Fprintf(os.Stderr, "index: read %d of %d chunks\n", qst.ChunksRead, qst.ChunksTotal)
			}
		}
		if err != nil {
			fail(err)
		}
		var b *scorep.BottleneckAnalysis
		if bottlenecks {
			if query.All() {
				b, err = exp.Bottlenecks()
			} else {
				b, _, err = exp.BottlenecksQuery(query)
			}
			if err != nil {
				fail(err)
			}
		}
		for _, w := range exp.Warnings() {
			warn(w)
		}
		if asJSON {
			out.TraceAnalysis = a
			out.Bottlenecks = b
			if b != nil {
				out.Findings = append(out.Findings, b.Findings...)
			}
		} else {
			a.Format(os.Stdout)
			if b != nil {
				fmt.Println()
				b.Format(os.Stdout)
			}
		}
	}
	shards := exp.TraceShards()
	if len(shards) > 0 {
		// A fleet experiment (scorep-daemon): per-process shard metrics,
		// then the fleet-wide aggregate merged across all of them.
		for i, sh := range shards {
			a, err := exp.ShardTraceAnalysis(i)
			if err != nil {
				fail(err)
			}
			var b *scorep.BottleneckAnalysis
			if bottlenecks {
				if b, err = exp.ShardBottlenecks(i); err != nil {
					fail(err)
				}
			}
			if asJSON {
				out.Shards = append(out.Shards, shardJSON{
					Stream: sh.Stream, File: sh.File, Complete: sh.Complete,
					Analysis: a, Bottlenecks: b,
				})
				continue
			}
			status := "complete"
			if !sh.Complete {
				status = "truncated"
			}
			fmt.Printf("-- shard %s (%s, %s) --\n", sh.Stream, sh.File, status)
			a.Format(os.Stdout)
			if b != nil {
				b.Format(os.Stdout)
			}
			fmt.Println()
		}
		fleet, err := exp.FleetTraceAnalysis()
		if err != nil {
			fail(err)
		}
		var fb *scorep.BottleneckFleetSummary
		if bottlenecks {
			if fb, err = exp.FleetBottlenecks(); err != nil {
				fail(err)
			}
		}
		if asJSON {
			out.Fleet = &fleetJSON{Analysis: fleet, Bottlenecks: fb}
		} else {
			fmt.Printf("== fleet aggregate (%d shards) ==\n", len(shards))
			fleet.Format(os.Stdout)
			if fb != nil {
				fmt.Println()
				fb.Format(os.Stdout)
			}
		}
		for _, w := range exp.Warnings() {
			warn(w)
		}
	}
	if asJSON {
		emitJSON(out)
		return
	}
	if !m.HasProfile && !m.HasTrace && len(shards) == 0 {
		fmt.Println("experiment holds neither profile nor trace; nothing to analyze")
	}
}

// emitJSON writes the analysis envelope to stdout, indented.
func emitJSON(v analysisJSON) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fail(err)
	}
}

// notef prints a side-effect notice: to stdout normally, to stderr in
// JSON mode so stdout stays one machine-readable object.
func notef(toStderr bool, format string, args ...any) {
	w := os.Stdout
	if toStderr {
		w = os.Stderr
	}
	fmt.Fprintf(w, format, args...)
}

// flagWasSet reports whether the named flag was given explicitly on the
// command line (as opposed to resting at its default).
func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func warn(msg string) {
	if msg != "" {
		fmt.Fprintf(os.Stderr, "warning: %s\n", msg)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "%v\n", err)
	os.Exit(1)
}
