// Command scorep-analyze performs automatic diagnosis of tasking
// inefficiencies — the Scalasca-style analysis the paper motivates.
//
// It either analyzes a saved profile report:
//
//	scorep-analyze -in report.json
//
// or runs a BOTS code live with combined profile + trace measurement and
// reports both the profile findings and the trace-derived management
// metrics (paper §VII):
//
//	scorep-analyze -code nqueens -size small -threads 4 [-cutoff]
package main

import (
	"flag"
	"fmt"
	"os"

	scorep "repro"
	"repro/internal/analyze"
	"repro/internal/bots"
	"repro/internal/clock"
	"repro/internal/cube"
	"repro/internal/measure"
	"repro/internal/omp"
	"repro/internal/region"
	"repro/internal/trace"
)

func main() {
	var (
		in       = flag.String("in", "", "saved report JSON to analyze")
		codeName = flag.String("code", "", "BOTS code to run and analyze live")
		sizeName = flag.String("size", "small", "input size: tiny|small|medium")
		threads  = flag.Int("threads", 4, "threads for live runs")
		cutoff   = flag.Bool("cutoff", false, "use the cut-off variant")
	)
	flag.Parse()

	switch {
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		rep, err := scorep.ReadReportJSON(f)
		if err != nil {
			fail(err)
		}
		analyze.Format(os.Stdout, analyze.Analyze(rep, analyze.Thresholds{}))

	case *codeName != "":
		spec := bots.ByName(*codeName)
		if spec == nil {
			fail(fmt.Errorf("unknown code %q", *codeName))
		}
		var size bots.Size
		switch *sizeName {
		case "tiny":
			size = bots.SizeTiny
		case "small":
			size = bots.SizeSmall
		case "medium":
			size = bots.SizeMedium
		default:
			fail(fmt.Errorf("unknown size %q", *sizeName))
		}
		if *cutoff && !spec.HasCutoff {
			fail(fmt.Errorf("%s has no cut-off variant", spec.Name))
		}

		// Combined profile + trace measurement via a Tee.
		m := measure.New()
		rec := trace.NewRecorder(clock.NewSystem())
		rt := omp.NewRuntimeWithRegistry(trace.NewTee(m, rec), region.Default)

		kernel := spec.Prepare(size, *cutoff)
		result := kernel(rt, *threads)
		if want := spec.Expected(size); result != want {
			fail(fmt.Errorf("verification failed: %d != %d", result, want))
		}
		m.Finish()
		rep := cube.Aggregate(m.Locations())

		fmt.Printf("== profile analysis: %s size=%s threads=%d cutoff=%v ==\n",
			spec.Name, *sizeName, *threads, *cutoff)
		analyze.Format(os.Stdout, analyze.Analyze(rep, analyze.Thresholds{}))

		fmt.Println()
		trace.Analyze(rec.Finish()).Format(os.Stdout)

	default:
		fmt.Fprintln(os.Stderr, "need -in report.json or -code <bots code>")
		os.Exit(2)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "%v\n", err)
	os.Exit(1)
}
