// Command scorep-analyze performs automatic diagnosis of tasking
// inefficiencies — the Scalasca-style analysis the paper motivates.
//
// It either analyzes a saved profile report:
//
//	scorep-analyze -in report.json
//
// a saved event trace (JSONL or binary otf2-style archive by
// extension; archives are analyzed streaming, in bounded memory, so
// they may be far larger than RAM):
//
//	scorep-analyze -trace trace.otf2
//	scorep-analyze -trace trace.jsonl
//
// or runs a BOTS code live with combined profile + trace measurement and
// reports both the profile findings and the trace-derived management
// metrics (paper §VII), optionally saving the trace:
//
//	scorep-analyze -code nqueens -size small -threads 4 [-cutoff] [-save-trace trace.otf2]
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	scorep "repro"
	"repro/internal/analyze"
	"repro/internal/bots"
	"repro/internal/clock"
	"repro/internal/cube"
	"repro/internal/measure"
	"repro/internal/omp"
	"repro/internal/otf2"
	"repro/internal/region"
	"repro/internal/trace"
)

func main() {
	var (
		in        = flag.String("in", "", "saved report JSON to analyze")
		tracePath = flag.String("trace", "", "saved event trace to analyze (.otf2 = binary archive, otherwise JSONL)")
		codeName  = flag.String("code", "", "BOTS code to run and analyze live")
		sizeName  = flag.String("size", "small", "input size: tiny|small|medium")
		threads   = flag.Int("threads", 4, "threads for live runs")
		cutoff    = flag.Bool("cutoff", false, "use the cut-off variant")
		saveTrace = flag.String("save-trace", "", "save the live run's trace (format by extension)")
	)
	flag.Parse()

	switch {
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		rep, err := scorep.ReadReportJSON(f)
		if err != nil {
			fail(err)
		}
		analyze.Format(os.Stdout, analyze.Analyze(rep, analyze.Thresholds{}))

	case *tracePath != "":
		var a *trace.Analysis
		var err error
		if otf2.IsArchivePath(*tracePath) {
			// Streaming analysis: O(chunk) memory however large the archive.
			var f *os.File
			f, err = os.Open(*tracePath)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			a, err = otf2.Analyze(f)
			if errors.Is(err, otf2.ErrTruncated) {
				// A crashed run's archive: report the intact prefix.
				fmt.Fprintf(os.Stderr, "warning: %v; analyzing the intact prefix\n", err)
				err = nil
			}
		} else {
			var tr *trace.Trace
			tr, err = otf2.ReadFile(*tracePath, region.NewRegistry())
			if err == nil {
				a = trace.Analyze(tr)
			}
		}
		if err != nil {
			fail(err)
		}
		a.Format(os.Stdout)

	case *codeName != "":
		spec := bots.ByName(*codeName)
		if spec == nil {
			fail(fmt.Errorf("unknown code %q", *codeName))
		}
		var size bots.Size
		switch *sizeName {
		case "tiny":
			size = bots.SizeTiny
		case "small":
			size = bots.SizeSmall
		case "medium":
			size = bots.SizeMedium
		default:
			fail(fmt.Errorf("unknown size %q", *sizeName))
		}
		if *cutoff && !spec.HasCutoff {
			fail(fmt.Errorf("%s has no cut-off variant", spec.Name))
		}

		// Combined profile + trace measurement via a Tee.
		m := measure.New()
		rec := trace.NewRecorder(clock.NewSystem())
		rt := omp.NewRuntimeWithRegistry(trace.NewTee(m, rec), region.Default)

		kernel := spec.Prepare(size, *cutoff)
		result := kernel(rt, *threads)
		if want := spec.Expected(size); result != want {
			fail(fmt.Errorf("verification failed: %d != %d", result, want))
		}
		m.Finish()
		rep := cube.Aggregate(m.Locations())

		fmt.Printf("== profile analysis: %s size=%s threads=%d cutoff=%v ==\n",
			spec.Name, *sizeName, *threads, *cutoff)
		analyze.Format(os.Stdout, analyze.Analyze(rep, analyze.Thresholds{}))

		fmt.Println()
		tr := rec.Finish()
		trace.Analyze(tr).Format(os.Stdout)

		if *saveTrace != "" {
			if err := otf2.WriteFile(*saveTrace, tr); err != nil {
				fail(err)
			}
			fmt.Printf("\nwrote %s (%d events)\n", *saveTrace, tr.NumEvents())
		}

	default:
		fmt.Fprintln(os.Stderr, "need -in report.json or -code <bots code>")
		os.Exit(2)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "%v\n", err)
	os.Exit(1)
}
