// Command scorep-timeline records an event trace of a BOTS run (or
// loads a saved trace or experiment archive) and renders per-thread
// task timelines plus a utilization table — the plain-text counterpart
// of the Vampir task views the paper's related work uses (Schmidl et
// al. [16]). Trace files are JSONL or binary otf2-style archives,
// chosen by extension (".otf2" is binary); traces truncated by a
// crashed run render their intact prefix.
//
// Usage:
//
//	scorep-timeline -code sort -size small -threads 4 [-width 120]
//	scorep-timeline -in trace.otf2 [-width 120] [-parallel 4]
//	scorep-timeline -exp scorep-run [-width 120]
//	scorep-timeline -code fib -size tiny -threads 4 -save trace.otf2 [-exp scorep-run]
package main

import (
	"flag"
	"fmt"
	"os"

	scorep "repro"
	"repro/internal/bots"
	"repro/internal/otf2"
	"repro/internal/region"
	"repro/internal/trace"
)

func main() {
	rf := bots.RegisterRunFlags(flag.CommandLine, "")
	var (
		in       = flag.String("in", "", "saved trace to render (.otf2 = binary archive, otherwise JSONL)")
		expDir   = flag.String("exp", "", "experiment directory: render its trace (without -code) or write the live run's archive to it (with -code)")
		width    = flag.Int("width", 100, "timeline width in characters")
		save     = flag.String("save", "", "also save the recorded trace (format by extension)")
		parallel = flag.Int("parallel", 0, "archive decode workers (0 = one per processor, 1 = sequential; the loaded trace is identical)")
	)
	flag.Parse()

	// -in, -exp (without -code) and -code each select the trace source;
	// reject ambiguous combinations instead of silently picking one.
	if *in != "" && (*expDir != "" || rf.Code != "") {
		fmt.Fprintln(os.Stderr, "-in conflicts with -exp and -code: pick one trace source")
		os.Exit(2)
	}

	var tr *scorep.Trace
	wroteExp := false
	switch {
	case *in != "":
		var warning string
		var err error
		tr, warning, err = otf2.ReadFileLenient(*in, region.NewRegistry(), *parallel)
		if err != nil {
			fail(err)
		}
		warn(warning)

	case rf.Code == "" && *expDir != "":
		exp, err := scorep.OpenExperiment(*expDir)
		if err != nil {
			fail(err)
		}
		exp.AnalysisParallelism = *parallel
		tr, err = exp.Trace()
		if err != nil {
			fail(err)
		}
		if tr == nil {
			fail(fmt.Errorf("%s: experiment holds no trace", *expDir))
		}
		for _, w := range exp.Warnings() {
			warn(w)
		}

	case rf.Code != "":
		spec, size, err := rf.Resolve()
		if err != nil {
			fail(err)
		}
		opts := []scorep.Option{scorep.WithoutProfiling(), scorep.WithTracing()}
		if *expDir != "" {
			opts = append(opts, scorep.WithExperimentDirectory(*expDir))
		}
		s := scorep.NewSession(opts...)
		kernel := spec.Prepare(size, rf.Cutoff)
		if got, want := kernel(s.Runtime(), rf.Threads), spec.Expected(size); got != want {
			fail(fmt.Errorf("verification failed: %d != %d", got, want))
		}
		res, err := s.End()
		if err != nil {
			fail(err)
		}
		tr = res.Trace()
		wroteExp = *expDir != ""

	default:
		fmt.Fprintln(os.Stderr, "need -in <trace>, -exp <dir> or -code <bots code>")
		os.Exit(2)
	}

	if err := trace.RenderTimeline(os.Stdout, tr, trace.TimelineOptions{Width: *width, ShowLegend: true}); err != nil {
		fail(err)
	}
	fmt.Println()
	trace.FormatUtilization(os.Stdout, trace.ComputeUtilization(tr))

	if *save != "" {
		if err := otf2.WriteFile(*save, tr); err != nil {
			fail(err)
		}
		fmt.Printf("\nwrote %s (%d events)\n", *save, tr.NumEvents())
	}
	if wroteExp {
		fmt.Printf("\nwrote experiment %s\n", *expDir)
	}
}

func warn(msg string) {
	if msg != "" {
		fmt.Fprintf(os.Stderr, "warning: %s\n", msg)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "%v\n", err)
	os.Exit(1)
}
