// Command scorep-timeline records an event trace of a BOTS run (or
// loads a saved trace or experiment archive) and renders per-thread
// task timelines plus a utilization table — the plain-text counterpart
// of the Vampir task views the paper's related work uses (Schmidl et
// al. [16]). Trace files are JSONL or binary otf2-style archives,
// chosen by extension (".otf2" is binary); traces truncated by a
// crashed run render their intact prefix.
//
// Saved traces (-in or -exp) can be rendered clipped to a slice of the
// recording with -window t0:t1 (inclusive, either side open) and -tids
// 0,2,5 (thread subset; -threads is the live run's thread count). On a
// format v2 archive the footer index restricts reading to the matching
// chunks. With -save to an .otf2 archive, -compress stores
// flate-compressed event chunks.
//
// Usage:
//
//	scorep-timeline -code sort -size small -threads 4 [-width 120]
//	scorep-timeline -in trace.otf2 [-width 120] [-parallel 4] [-window 1000:2000] [-tids 0,1]
//	scorep-timeline -exp scorep-run [-width 120] [-window :5000]
//	scorep-timeline -code fib -size tiny -threads 4 -save trace.otf2 [-compress] [-exp scorep-run]
package main

import (
	"flag"
	"fmt"
	"os"

	scorep "repro"
	"repro/internal/bots"
	"repro/internal/cliq"
	"repro/internal/otf2"
	"repro/internal/region"
	"repro/internal/trace"
)

func main() {
	rf := bots.RegisterRunFlags(flag.CommandLine, "")
	var (
		in       = flag.String("in", "", "saved trace to render (.otf2 = binary archive, otherwise JSONL)")
		expDir   = flag.String("exp", "", "experiment directory: render its trace (without -code) or write the live run's archive to it (with -code)")
		width    = flag.Int("width", 100, "timeline width in characters")
		save     = flag.String("save", "", "also save the recorded trace (format by extension)")
		parallel = flag.Int("parallel", 0, "archive decode workers (0 = one per processor, 1 = sequential; the loaded trace is identical)")
		window   = flag.String("window", "", "render only the inclusive time window t0:t1 (either bound may be empty)")
		tids     = flag.String("tids", "", "render only a comma-separated thread-ID subset")
		compress = flag.Bool("compress", false, "with -save to an .otf2 archive: flate-compress event chunks")
	)
	flag.Parse()

	// -in, -exp (without -code) and -code each select the trace source;
	// reject ambiguous combinations instead of silently picking one.
	if *in != "" && (*expDir != "" || rf.Code != "") {
		fmt.Fprintln(os.Stderr, "-in conflicts with -exp and -code: pick one trace source")
		os.Exit(2)
	}
	if (*window != "" || *tids != "") && rf.Code != "" {
		fmt.Fprintln(os.Stderr, "-window and -tids only apply to saved traces (-in or -exp input)")
		os.Exit(2)
	}
	if *compress && (*save == "" || !otf2.IsArchivePath(*save)) {
		fmt.Fprintln(os.Stderr, "-compress only applies when saving a binary archive (-save <file>.otf2)")
		os.Exit(2)
	}
	query, err := cliq.Build(*window, *tids, "tids")
	if err != nil {
		fail(err)
	}

	var tr *scorep.Trace
	wroteExp := false
	switch {
	case *in != "":
		var warning string
		var err error
		tr, _, warning, err = otf2.ReadFileQuery(*in, region.NewRegistry(), query, *parallel)
		if err != nil {
			fail(err)
		}
		warn(warning)

	case rf.Code == "" && *expDir != "":
		exp, err := scorep.OpenExperiment(*expDir)
		if err != nil {
			fail(err)
		}
		if !exp.Meta.HasTrace {
			fail(fmt.Errorf("%s: experiment holds no trace", *expDir))
		}
		var warning string
		tr, _, warning, err = otf2.ReadFileQuery(exp.TracePath(), region.NewRegistry(), query, *parallel)
		if err != nil {
			fail(err)
		}
		warn(warning)

	case rf.Code != "":
		spec, size, err := rf.Resolve()
		if err != nil {
			fail(err)
		}
		opts := []scorep.Option{scorep.WithoutProfiling(), scorep.WithTracing()}
		if *expDir != "" {
			opts = append(opts, scorep.WithExperimentDirectory(*expDir))
		}
		s := scorep.NewSession(opts...)
		kernel := spec.Prepare(size, rf.Cutoff)
		if got, want := kernel(s.Runtime(), rf.Threads), spec.Expected(size); got != want {
			fail(fmt.Errorf("verification failed: %d != %d", got, want))
		}
		res, err := s.End()
		if err != nil {
			fail(err)
		}
		tr = res.Trace()
		wroteExp = *expDir != ""

	default:
		fmt.Fprintln(os.Stderr, "need -in <trace>, -exp <dir> or -code <bots code>")
		os.Exit(2)
	}

	if err := trace.RenderTimeline(os.Stdout, tr, trace.TimelineOptions{Width: *width, ShowLegend: true}); err != nil {
		fail(err)
	}
	fmt.Println()
	trace.FormatUtilization(os.Stdout, trace.ComputeUtilization(tr))

	if *save != "" {
		var wopts []otf2.WriterOption
		if *compress {
			wopts = append(wopts, otf2.WithCompression(otf2.CompressionFlate))
		}
		if err := otf2.WriteFile(*save, tr, wopts...); err != nil {
			fail(err)
		}
		fmt.Printf("\nwrote %s (%d events)\n", *save, tr.NumEvents())
	}
	if wroteExp {
		fmt.Printf("\nwrote experiment %s\n", *expDir)
	}
}

func warn(msg string) {
	if msg != "" {
		fmt.Fprintf(os.Stderr, "warning: %s\n", msg)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "%v\n", err)
	os.Exit(1)
}
