// Command scorep-timeline records an event trace of a BOTS run (or
// loads a saved trace) and renders per-thread task timelines plus a
// utilization table — the plain-text counterpart of the Vampir task
// views the paper's related work uses (Schmidl et al. [16]). Trace
// files are JSONL or binary otf2-style archives, chosen by extension
// (".otf2" is binary).
//
// Usage:
//
//	scorep-timeline -code sort -size small -threads 4 [-width 120]
//	scorep-timeline -in trace.jsonl [-width 120]
//	scorep-timeline -code fib -size tiny -threads 4 -save trace.otf2
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/bots"
	"repro/internal/clock"
	"repro/internal/omp"
	"repro/internal/otf2"
	"repro/internal/region"
	"repro/internal/trace"
)

func main() {
	var (
		in       = flag.String("in", "", "saved trace to render (.otf2 = binary archive, otherwise JSONL)")
		codeName = flag.String("code", "", "BOTS code to run and trace")
		sizeName = flag.String("size", "small", "input size: tiny|small|medium")
		threads  = flag.Int("threads", 4, "threads")
		cutoff   = flag.Bool("cutoff", false, "use the cut-off variant")
		width    = flag.Int("width", 100, "timeline width in characters")
		save     = flag.String("save", "", "also save the recorded trace (format by extension)")
	)
	flag.Parse()

	var tr *trace.Trace
	switch {
	case *in != "":
		var err error
		tr, err = otf2.ReadFile(*in, region.NewRegistry())
		if errors.Is(err, otf2.ErrTruncated) {
			// A crashed run's archive: render the intact prefix.
			fmt.Fprintf(os.Stderr, "warning: %v; rendering the intact prefix (%d events)\n", err, tr.NumEvents())
			err = nil
		}
		if err != nil {
			fail(err)
		}
	case *codeName != "":
		spec := bots.ByName(*codeName)
		if spec == nil {
			fail(fmt.Errorf("unknown code %q", *codeName))
		}
		var size bots.Size
		switch *sizeName {
		case "tiny":
			size = bots.SizeTiny
		case "small":
			size = bots.SizeSmall
		case "medium":
			size = bots.SizeMedium
		default:
			fail(fmt.Errorf("unknown size %q", *sizeName))
		}
		if *cutoff && !spec.HasCutoff {
			fail(fmt.Errorf("%s has no cut-off variant", spec.Name))
		}
		rec := trace.NewRecorder(clock.NewSystem())
		rt := omp.NewRuntimeWithRegistry(rec, region.Default)
		kernel := spec.Prepare(size, *cutoff)
		if got, want := kernel(rt, *threads), spec.Expected(size); got != want {
			fail(fmt.Errorf("verification failed: %d != %d", got, want))
		}
		tr = rec.Finish()
	default:
		fmt.Fprintln(os.Stderr, "need -in trace.jsonl or -code <bots code>")
		os.Exit(2)
	}

	if err := trace.RenderTimeline(os.Stdout, tr, trace.TimelineOptions{Width: *width, ShowLegend: true}); err != nil {
		fail(err)
	}
	fmt.Println()
	trace.FormatUtilization(os.Stdout, trace.ComputeUtilization(tr))

	if *save != "" {
		if err := otf2.WriteFile(*save, tr); err != nil {
			fail(err)
		}
		fmt.Printf("\nwrote %s (%d events)\n", *save, tr.NumEvents())
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "%v\n", err)
	os.Exit(1)
}
