// Command scorep-report renders a saved profile report (JSON, written
// by scorep-bots -json or scorep.WriteReportJSON) or the profile of an
// experiment archive (written by scorep-bots -exp or
// Results.SaveExperiment) as a text tree or CSV — the offline
// CUBE-viewer analog — or structurally diffs two reports (the
// run-comparison workflow the paper's stable call-tree design enables,
// Section IV-B3). -in and -diff accept either a report JSON file or an
// experiment directory.
//
// Usage:
//
//	scorep-report -in report.json [-csv] [-per-thread] [-min-sum 1ms]
//	scorep-report -exp scorep-run [-csv]
//	scorep-report -in baseline.json -diff candidate.json [-top 10]
//	scorep-report -in scorep-base -diff scorep-cand [-top 10] [-parallel 2]
//
// With -diff, -parallel > 1 loads the two inputs concurrently (the
// rendered reports and diffs are identical at every setting).
//
// When the input is an experiment that also archived a trace, -window
// t0:t1 and/or -threads a,b,c append the trace-derived metrics of just
// that slice after the profile — on a format v2 archive the footer
// index reads only the matching chunks:
//
//	scorep-report -exp scorep-run -window 1000:2000 -threads 0,1
//
// A fleet experiment sealed by scorep-daemon (per-process trace shards,
// no profile) renders per-shard trace metrics, the fleet aggregate and
// the fleet bottleneck summary (fleet-summed wait states with the worst
// shard per kind, and the shard with the longest critical path):
//
//	scorep-report -exp scorep-fleet
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	scorep "repro"
	"repro/internal/cliq"
)

func main() {
	var (
		in        = flag.String("in", "", "input report JSON or experiment directory (the baseline for -diff)")
		expDir    = flag.String("exp", "", "input experiment directory (alias for -in with an experiment)")
		diffPath  = flag.String("diff", "", "second report JSON or experiment directory to diff against -in")
		top       = flag.Int("top", 0, "with -diff: print only the N largest deltas")
		asCSV     = flag.Bool("csv", false, "emit CSV instead of a text tree")
		perThread = flag.Bool("per-thread", false, "render per-thread breakdown")
		minSum    = flag.Duration("min-sum", 0, "hide nodes below this inclusive time")
		parallel  = flag.Int("parallel", 0, "with -diff: load the two inputs concurrently (0 = one per processor, 1 = sequential; output is identical)")
		window    = flag.String("window", "", "with an experiment input: append trace metrics of the inclusive time window t0:t1")
		threads   = flag.String("threads", "", "with an experiment input: append trace metrics of a comma-separated thread-ID subset")
	)
	flag.Parse()
	if *in != "" && *expDir != "" {
		fmt.Fprintln(os.Stderr, "-in conflicts with -exp: pick one input")
		os.Exit(2)
	}
	if *in == "" {
		*in = *expDir
	}
	if *in == "" {
		fmt.Fprintln(os.Stderr, "missing -in report.json (or -exp dir)")
		os.Exit(2)
	}
	parallelSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "parallel" {
			parallelSet = true
		}
	})
	if parallelSet && *diffPath == "" {
		fmt.Fprintln(os.Stderr, "-parallel only applies to -diff (loading the two inputs concurrently)")
		os.Exit(2)
	}
	if (*window != "" || *threads != "") && (*diffPath != "" || *asCSV) {
		fmt.Fprintln(os.Stderr, "-window and -threads append trace metrics to a single text report; they conflict with -diff and -csv")
		os.Exit(2)
	}
	query, err := cliq.Build(*window, *threads, "threads")
	if err != nil {
		fail(err)
	}
	querySet := *window != "" || *threads != ""
	if *parallel <= 0 {
		*parallel = runtime.GOMAXPROCS(0)
	}

	if *diffPath != "" {
		var rep, cand *scorep.Report
		if *parallel > 1 {
			done := make(chan struct{})
			go func() { cand = load(*diffPath); close(done) }()
			rep = load(*in)
			<-done
		} else {
			rep = load(*in)
			cand = load(*diffPath)
		}
		rd := scorep.DiffReports(rep, cand)
		if *top > 0 {
			fmt.Printf("top %d deltas (baseline=%s candidate=%s):\n", *top, *in, *diffPath)
			for _, d := range rd.TopRegressions(*top) {
				fmt.Printf("  %-40s delta=%s\n", d.Name, formatNs(d.DeltaSum()))
			}
			return
		}
		if err := scorep.RenderReportDiff(os.Stdout, rd); err != nil {
			fail(err)
		}
		return
	}

	if fi, err := os.Stat(*in); err == nil && fi.IsDir() {
		exp, err := scorep.OpenExperiment(*in)
		if err != nil {
			fail(err)
		}
		printFlightRecorder(exp.Meta.FlightRecorder)
		if !exp.Meta.HasProfile && exp.Meta.FlightRecorder != nil && len(exp.TraceShards()) == 0 {
			// A flight-recorder dump directory holds a trace window but
			// no profile: render the window's trace metrics instead of
			// the (absent) call-path report.
			a, err := exp.TraceAnalysis()
			if err != nil {
				fail(err)
			}
			a.Format(os.Stdout)
			for _, w := range exp.Warnings() {
				fmt.Fprintf(os.Stderr, "warning: %s\n", w)
			}
			return
		}
		if !exp.Meta.HasProfile && len(exp.TraceShards()) > 0 {
			// A daemon-sealed fleet experiment holds trace shards but no
			// profile: render the per-shard and fleet trace metrics
			// instead of the (absent) call-path report.
			if *asCSV || querySet {
				fmt.Fprintln(os.Stderr, "-csv, -window and -threads do not apply to a fleet experiment (per-process trace shards, no profile)")
				os.Exit(2)
			}
			renderFleet(*in, exp)
			return
		}
	}

	rep := load(*in)
	if *asCSV {
		err = scorep.WriteReportCSV(os.Stdout, rep)
	} else {
		err = scorep.RenderReport(os.Stdout, rep, scorep.RenderOptions{
			PerThread: *perThread,
			MinSumNs:  int64(*minSum),
		})
	}
	if err != nil {
		fail(err)
	}
	if querySet {
		printTraceMetrics(*in, query)
	}
}

// printFlightRecorder surfaces a flight-recorder experiment's eviction
// accounting: the archived trace is only the retained window, so the
// dropped counts say how much history the report does NOT cover. A
// partial (truncated) dump additionally warns on stderr.
func printFlightRecorder(fr *scorep.FlightRecorderInfo) {
	if fr == nil {
		return
	}
	fmt.Printf("flight recorder: ring=%dx%d retained-events=%d dropped-events=%d dropped-chunks=%d",
		fr.RingChunks, fr.ChunkEvents, fr.RetainedEvents, fr.DroppedEvents, fr.DroppedChunks)
	if fr.Trigger != "" {
		fmt.Printf(" trigger=%s", fr.Trigger)
	}
	fmt.Println()
	if fr.Partial {
		fmt.Fprintf(os.Stderr, "warning: partial flight-recorder dump (%s): trace.otf2 holds only the intact prefix of the window\n", fr.Error)
	}
}

// renderFleet renders a multi-process fleet experiment: one trace
// metrics block per shard (process), then the fleet-wide aggregate
// merged across all of them.
func renderFleet(dir string, exp *scorep.Experiment) {
	shards := exp.TraceShards()
	fmt.Printf("== fleet experiment %s (%d shards) ==\n", dir, len(shards))
	for i, sh := range shards {
		status := "complete"
		if !sh.Complete {
			status = "truncated"
		}
		fmt.Printf("\n-- shard %s (%s, %s, %d bytes", sh.Stream, sh.File, status, sh.Bytes)
		if sh.DroppedEvents > 0 {
			fmt.Printf(", %d events dropped at source", sh.DroppedEvents)
		}
		fmt.Printf(") --\n")
		a, err := exp.ShardTraceAnalysis(i)
		if err != nil {
			fail(err)
		}
		a.Format(os.Stdout)
	}
	fleet, err := exp.FleetTraceAnalysis()
	if err != nil {
		fail(err)
	}
	fmt.Printf("\n== fleet aggregate (%d shards) ==\n", len(shards))
	fleet.Format(os.Stdout)
	// The fleet bottleneck summary: per wait-state kind the fleet-summed
	// time and the worst shard, plus the shard with the longest critical
	// path (see scorep-analyze -bottlenecks for the full per-shard view).
	fb, err := exp.FleetBottlenecks()
	if err != nil {
		fail(err)
	}
	if fb != nil {
		fmt.Println()
		fb.Format(os.Stdout)
	}
	for _, w := range exp.Warnings() {
		fmt.Fprintf(os.Stderr, "warning: %s\n", w)
	}
}

// printTraceMetrics appends the trace-derived metrics of the query's
// slice of the input experiment's archived trace.
func printTraceMetrics(path string, q scorep.TraceQuery) {
	fi, err := os.Stat(path)
	if err != nil || !fi.IsDir() {
		fail(fmt.Errorf("-window/-threads need an experiment directory input with a trace; %s is not a directory", path))
	}
	exp, err := scorep.OpenExperiment(path)
	if err != nil {
		fail(err)
	}
	if !exp.Meta.HasTrace {
		fail(fmt.Errorf("%s: experiment holds no trace to window", path))
	}
	a, qst, err := exp.TraceAnalysisQuery(q)
	if err != nil {
		fail(err)
	}
	for _, w := range exp.Warnings() {
		fmt.Fprintf(os.Stderr, "warning: %s\n", w)
	}
	fmt.Printf("\n== trace metrics (%s) ==\n", q)
	if qst.Indexed {
		fmt.Fprintf(os.Stderr, "index: read %d of %d chunks\n", qst.ChunksRead, qst.ChunksTotal)
	}
	a.Format(os.Stdout)
}

// load reads a report from either a JSON file or an experiment archive
// directory.
func load(path string) *scorep.Report {
	if fi, err := os.Stat(path); err == nil && fi.IsDir() {
		exp, err := scorep.OpenExperiment(path)
		if err != nil {
			fail(err)
		}
		rep, err := exp.Report()
		if err != nil {
			fail(err)
		}
		if rep == nil {
			fail(fmt.Errorf("%s: experiment holds no profile (run was not profiled)", path))
		}
		return rep
	}
	f, err := os.Open(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	rep, err := scorep.ReadReportJSON(f)
	if err != nil {
		fail(fmt.Errorf("%s: %w", path, err))
	}
	return rep
}

func formatNs(ns int64) string {
	sign := ""
	if ns >= 0 {
		sign = "+"
	}
	return fmt.Sprintf("%s%.3gms", sign, float64(ns)/1e6)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "%v\n", err)
	os.Exit(1)
}
