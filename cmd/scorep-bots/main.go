// Command scorep-bots runs one BOTS benchmark on the task runtime,
// optionally instrumented with the task profiler, and prints the
// CUBE-style profile and/or timing.
//
// Usage:
//
//	scorep-bots -code nqueens -size small -threads 4 [-cutoff]
//	            [-uninstrumented] [-json report.json] [-csv report.csv]
//	            [-per-thread] [-min-sum 1ms]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	scorep "repro"
	"repro/internal/bots"
)

func main() {
	var (
		codeName  = flag.String("code", "fib", "BOTS code: alignment|fft|fib|floorplan|health|nqueens|sort|sparselu|strassen")
		sizeName  = flag.String("size", "small", "input size: tiny|small|medium")
		threads   = flag.Int("threads", 4, "number of threads")
		cutoff    = flag.Bool("cutoff", false, "use the cut-off variant (fib, floorplan, health, nqueens, strassen)")
		uninst    = flag.Bool("uninstrumented", false, "run without measurement (overhead baseline)")
		jsonPath  = flag.String("json", "", "write the profile report as JSON to this file")
		csvPath   = flag.String("csv", "", "write the profile report as CSV to this file")
		perThread = flag.Bool("per-thread", false, "render per-thread breakdown")
		minSum    = flag.Duration("min-sum", 0, "hide nodes below this inclusive time")
		depthProf = flag.Bool("depth-param", false, "nqueens only: enable per-depth parameter instrumentation (Table IV)")
	)
	flag.Parse()

	spec := bots.ByName(*codeName)
	if spec == nil {
		fmt.Fprintf(os.Stderr, "unknown code %q\n", *codeName)
		os.Exit(2)
	}
	var size bots.Size
	switch *sizeName {
	case "tiny":
		size = bots.SizeTiny
	case "small":
		size = bots.SizeSmall
	case "medium":
		size = bots.SizeMedium
	default:
		fmt.Fprintf(os.Stderr, "unknown size %q\n", *sizeName)
		os.Exit(2)
	}
	if *cutoff && !spec.HasCutoff {
		fmt.Fprintf(os.Stderr, "%s has no cut-off variant\n", spec.Name)
		os.Exit(2)
	}

	kernel := spec.Prepare(size, *cutoff)
	if *depthProf {
		if spec.Name != "nqueens" {
			fmt.Fprintln(os.Stderr, "-depth-param is only supported for nqueens")
			os.Exit(2)
		}
		kernel = bots.NQueensDepthKernel(size)
	}

	var m *scorep.Measurement
	var rt *scorep.Runtime
	if *uninst {
		rt = scorep.NewRuntime(nil)
	} else {
		m = scorep.NewMeasurement()
		rt = scorep.NewRuntime(m)
	}

	start := time.Now()
	result := kernel(rt, *threads)
	elapsed := time.Since(start)

	ok := "OK"
	if result != spec.Expected(size) && !*depthProf {
		ok = "FAILED"
	}
	fmt.Printf("%s size=%s threads=%d cutoff=%v instrumented=%v\n",
		spec.Name, *sizeName, *threads, *cutoff, !*uninst)
	fmt.Printf("kernel time: %v   verification: %s (result=%d)\n", elapsed, ok, result)
	st := rt.LastTeamStats()
	fmt.Printf("tasks created: %d   steals: %d   max inline nesting: %d\n",
		st.TasksCreated, st.Steals, st.MaxStackDepth)
	fmt.Printf("scheduler: steal attempts: %d   failed steals: %d   parks: %d   wakes: %d   steals by thread: %v\n\n",
		st.StealAttempts, st.FailedSteals, st.Parks, st.Wakes, st.ThreadSteals)

	if m == nil {
		return
	}
	m.Finish()
	rep := scorep.AggregateReport(m.Locations())
	if err := scorep.RenderReport(os.Stdout, rep, scorep.RenderOptions{
		PerThread: *perThread,
		MinSumNs:  int64(*minSum),
	}); err != nil {
		fmt.Fprintf(os.Stderr, "render: %v\n", err)
		os.Exit(1)
	}
	if *jsonPath != "" {
		writeTo(*jsonPath, func(f *os.File) error { return scorep.WriteReportJSON(f, rep) })
	}
	if *csvPath != "" {
		writeTo(*csvPath, func(f *os.File) error { return scorep.WriteReportCSV(f, rep) })
	}
	if ok == "FAILED" {
		os.Exit(1)
	}
}

func writeTo(path string, fn func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := fn(f); err != nil {
		fmt.Fprintf(os.Stderr, "writing %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", path)
}
