// Command scorep-bots runs one BOTS benchmark through a measurement
// session, optionally instrumented with the task profiler, and prints
// the CUBE-style profile and/or timing. With -exp it additionally
// records an event trace and leaves a complete experiment archive
// (profile.json + trace.otf2 + meta.json) for offline analysis by
// scorep-report, scorep-analyze and scorep-timeline.
//
// With -sink (or SCOREP_TRACE_SINK) the event trace is instead streamed
// to a running scorep-daemon, which collects one shard per process into
// its fleet experiment — the multi-process measurement mode.
//
// Usage:
//
//	scorep-bots -code nqueens -size small -threads 4 [-cutoff]
//	            [-uninstrumented] [-json report.json] [-csv report.csv]
//	            [-exp dir] [-per-thread] [-min-sum 1ms]
//	            [-sink unix:///tmp/scorep.sock] [-sink-id name]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	scorep "repro"
	"repro/internal/bots"
)

func main() {
	rf := bots.RegisterRunFlags(flag.CommandLine, "fib")
	var (
		uninst    = flag.Bool("uninstrumented", false, "run without measurement (overhead baseline)")
		jsonPath  = flag.String("json", "", "write the profile report as JSON to this file")
		csvPath   = flag.String("csv", "", "write the profile report as CSV to this file")
		expDir    = flag.String("exp", "", "write an experiment archive (profile + trace + meta) to this directory")
		perThread = flag.Bool("per-thread", false, "render per-thread breakdown")
		minSum    = flag.Duration("min-sum", 0, "hide nodes below this inclusive time")
		depthProf = flag.Bool("depth-param", false, "nqueens only: enable per-depth parameter instrumentation (Table IV)")
		sinkAddr  = flag.String("sink", "", "stream the trace to a scorep-daemon at this address (unix:///path.sock, tcp://host:port)")
		sinkID    = flag.String("sink-id", "", "stream/shard name in the daemon's fleet experiment (default: pid-derived)")
	)
	flag.Parse()

	spec, size, err := rf.Resolve()
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(2)
	}
	kernel := spec.Prepare(size, rf.Cutoff)
	if *depthProf {
		if spec.Name != "nqueens" {
			fmt.Fprintln(os.Stderr, "-depth-param is only supported for nqueens")
			os.Exit(2)
		}
		kernel = bots.NQueensDepthKernel(size)
	}

	if *uninst && *expDir != "" {
		// An experiment records measurement (at least the trace), which
		// would silently invalidate the uninstrumented timing baseline.
		fmt.Fprintln(os.Stderr, "-uninstrumented and -exp conflict: an experiment run is instrumented")
		os.Exit(2)
	}
	if *uninst && (*jsonPath != "" || *csvPath != "") {
		fmt.Fprintln(os.Stderr, "-uninstrumented and -json/-csv conflict: an uninstrumented run has no report")
		os.Exit(2)
	}
	var opts []scorep.Option
	if *uninst {
		opts = append(opts, scorep.WithoutProfiling())
	}
	if *expDir != "" {
		// The experiment archive ties profile and trace together, so an
		// -exp run records both.
		opts = append(opts, scorep.WithTracing(), scorep.WithExperimentDirectory(*expDir))
	}
	if *sinkAddr != "" {
		opts = append(opts, scorep.WithRemoteTrace(*sinkAddr))
	}
	if *sinkID != "" {
		opts = append(opts, scorep.WithRemoteTraceStream(*sinkID))
	}
	// The environment layers over the flags (SCOREP_TRACE_SINK wins over
	// -sink), exactly like Score-P's runtime configuration.
	s, err := scorep.NewSessionFromEnv(opts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(2)
	}
	if cl := s.RemoteTraceSink(); cl != nil {
		fmt.Printf("streaming trace as %q\n", cl.StreamID())
	}

	start := time.Now()
	result := kernel(s.Runtime(), rf.Threads)
	elapsed := time.Since(start)

	res, err := s.End()
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(1)
	}

	ok := "OK"
	if result != spec.Expected(size) && !*depthProf {
		ok = "FAILED"
	}
	fmt.Printf("%s size=%s threads=%d cutoff=%v instrumented=%v\n",
		spec.Name, rf.Size, rf.Threads, rf.Cutoff, s.Profiling())
	fmt.Printf("kernel time: %v   verification: %s (result=%d)\n", elapsed, ok, result)
	st := res.TeamStats()
	fmt.Printf("tasks created: %d   steals: %d   max inline nesting: %d\n",
		st.TasksCreated, st.Steals, st.MaxStackDepth)
	fmt.Printf("scheduler: steal attempts: %d   failed steals: %d   parks: %d   wakes: %d   steals by thread: %v\n\n",
		st.StealAttempts, st.FailedSteals, st.Parks, st.Wakes, st.ThreadSteals)
	if *expDir != "" {
		fmt.Printf("wrote experiment %s\n", *expDir)
	}

	rep := res.Report()
	if rep == nil {
		if ok == "FAILED" {
			os.Exit(1)
		}
		return
	}
	if err := scorep.RenderReport(os.Stdout, rep, scorep.RenderOptions{
		PerThread: *perThread,
		MinSumNs:  int64(*minSum),
	}); err != nil {
		fmt.Fprintf(os.Stderr, "render: %v\n", err)
		os.Exit(1)
	}
	if *jsonPath != "" {
		writeTo(*jsonPath, func(f *os.File) error { return scorep.WriteReportJSON(f, rep) })
	}
	if *csvPath != "" {
		writeTo(*csvPath, func(f *os.File) error { return scorep.WriteReportCSV(f, rep) })
	}
	if ok == "FAILED" {
		os.Exit(1)
	}
}

func writeTo(path string, fn func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := fn(f); err != nil {
		fmt.Fprintf(os.Stderr, "writing %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", path)
}
