// Command scorep-convert converts event traces between the JSONL
// stand-in format and the binary otf2-style archive format, in either
// direction, picking each side's codec by file extension (".otf2" is
// binary, anything else JSONL). The input may also be an experiment
// archive directory (-exp), whose trace.otf2 is used. With -stats it
// reports size, event count and bytes/event for both sides — plus, for
// archives, the physical layout: format version, footer-index
// presence, per-thread chunk counts and the event-chunk compression
// ratio — the measurement behind the format's compression claim.
//
// Archive outputs take -compress (flate-compress each event chunk) and
// -format-version 1|2 (2, the default, writes the seekable indexed
// format; 1 writes archives byte-compatible with pre-index readers —
// converting v1->v2->v1 round-trips the event stream byte-identically).
// -window t0:t1 and -threads a,b,c convert only the matching sub-trace.
//
// Usage:
//
//	scorep-convert -in trace.jsonl -out trace.otf2 [-stats] [-compress]
//	scorep-convert -in trace.otf2 -out trace.jsonl [-parallel 4]
//	scorep-convert -in v1.otf2 -out v2.otf2 [-format-version 2]
//	scorep-convert -in trace.otf2 -out slice.otf2 -window 1000:2000 -threads 0,1
//	scorep-convert -exp scorep-run -out trace.jsonl
//	scorep-convert -in trace.otf2 -stats          (inspect only)
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	scorep "repro"
	"repro/internal/cliq"
	"repro/internal/otf2"
	"repro/internal/region"
	"repro/internal/trace"
)

func main() {
	var (
		in       = flag.String("in", "", "input trace (.otf2 = binary archive, otherwise JSONL)")
		expDir   = flag.String("exp", "", "input experiment directory (its trace.otf2 is converted)")
		out      = flag.String("out", "", "output trace; format chosen by extension (optional with -stats)")
		stats    = flag.Bool("stats", false, "print size/event-count/bytes-per-event statistics (and archive layout)")
		parallel = flag.Int("parallel", 0, "archive decode workers (0 = one per processor, 1 = sequential; the loaded trace is identical)")
		window   = flag.String("window", "", "convert only the inclusive time window t0:t1 (either bound may be empty)")
		threads  = flag.String("threads", "", "convert only a comma-separated thread-ID subset")
		compress = flag.Bool("compress", false, "flate-compress event chunks of an .otf2 output")
		formatV  = flag.Int("format-version", int(otf2.FormatVersion), "archive format version of an .otf2 output (1 = pre-index compatible, 2 = seekable indexed)")
	)
	flag.Parse()

	if *in != "" && *expDir != "" {
		fmt.Fprintln(os.Stderr, "-in conflicts with -exp: pick one input")
		os.Exit(2)
	}
	outIsArchive := *out != "" && otf2.IsArchivePath(*out)
	if *compress && !outIsArchive {
		fmt.Fprintln(os.Stderr, "-compress only applies to an .otf2 output (-out <file>.otf2)")
		os.Exit(2)
	}
	if flagWasSet("format-version") && !outIsArchive {
		fmt.Fprintln(os.Stderr, "-format-version only applies to an .otf2 output (-out <file>.otf2)")
		os.Exit(2)
	}
	if *compress && *formatV == 1 {
		fmt.Fprintln(os.Stderr, "-compress requires -format-version 2: v1 archives predate compression")
		os.Exit(2)
	}
	if (*window != "" || *threads != "") && *out == "" {
		fmt.Fprintln(os.Stderr, "-window and -threads select a sub-trace to convert; they need -out")
		os.Exit(2)
	}
	query, err := cliq.Build(*window, *threads, "threads")
	if err != nil {
		fail(err)
	}
	if *in == "" && *expDir != "" {
		exp, err := scorep.OpenExperiment(*expDir)
		if err != nil {
			fail(err)
		}
		if !exp.Meta.HasTrace {
			fail(fmt.Errorf("%s: experiment holds no trace", *expDir))
		}
		*in = exp.TracePath()
	}
	if *in == "" || (*out == "" && !*stats) {
		fmt.Fprintln(os.Stderr, "need -in <trace> (or -exp <dir>) and -out <trace> (or -stats)")
		os.Exit(2)
	}

	if *out == "" && otf2.IsArchivePath(*in) {
		// Inspect-only on an archive: count events streaming, in
		// O(chunk) memory, so archives larger than RAM can be sized up.
		events, warning, err := otf2.CountFileEvents(*in)
		if err != nil {
			fail(err)
		}
		warn(warning)
		printStats("in", *in, events)
		return
	}

	tr, _, warning, err := otf2.ReadFileQuery(*in, region.NewRegistry(), query, *parallel)
	if err != nil {
		fail(err)
	}
	warn(warning)
	events := tr.NumEvents()
	if *stats {
		printStats("in", *in, events)
	}

	if *out != "" {
		if !otf2.IsArchivePath(*out) {
			// JSONL cannot represent a region with an empty name (an
			// empty "r" field reads back as no region); the binary
			// format can. Flag the lossy case instead of hiding it.
			if n := emptyNameRegionEvents(tr); n > 0 {
				fmt.Fprintf(os.Stderr, "warning: %d events reference empty-named regions, which JSONL cannot represent; they will read back region-less\n", n)
			}
		}
		var wopts []otf2.WriterOption
		if outIsArchive {
			wopts = append(wopts, otf2.WithVersion(*formatV))
			if *compress {
				wopts = append(wopts, otf2.WithCompression(otf2.CompressionFlate))
			}
		}
		if err := otf2.WriteFile(*out, tr, wopts...); err != nil {
			fail(err)
		}
		if *stats {
			printStats("out", *out, events)
			ratio(*in, *out)
		} else {
			fmt.Printf("wrote %s (%d events, %d threads)\n", *out, events, len(tr.Threads))
		}
	}
}

// flagWasSet reports whether the named flag was given explicitly on the
// command line (as opposed to resting at its default).
func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// emptyNameRegionEvents counts events whose region JSONL cannot round-trip.
func emptyNameRegionEvents(tr *trace.Trace) int {
	n := 0
	for _, evs := range tr.Threads {
		for _, ev := range evs {
			if ev.Region != nil && ev.Region.Name == "" {
				n++
			}
		}
	}
	return n
}

func printStats(label, path string, events int) {
	fi, err := os.Stat(path)
	if err != nil {
		fail(err)
	}
	format := "jsonl"
	if otf2.IsArchivePath(path) {
		format = "otf2"
	}
	perEvent := 0.0
	if events > 0 {
		perEvent = float64(fi.Size()) / float64(events)
	}
	fmt.Printf("%-3s %s: format=%s size=%d bytes events=%d bytes/event=%.2f\n",
		label, path, format, fi.Size(), events, perEvent)
	if format == "otf2" {
		printArchiveStats(label, path)
	}
}

// printArchiveStats reports an archive's physical layout: format
// version, index presence, compression effectiveness and per-thread
// chunk counts — the seekability material behind -window queries.
func printArchiveStats(label, path string) {
	st, err := otf2.StatFile(path)
	if err != nil {
		fail(err)
	}
	fmt.Printf("%-3s version=%d indexed=%v", label, st.FormatVersion, st.Indexed)
	if st.Indexed {
		ratio := 1.0
		if st.StoredEventBytes > 0 {
			ratio = float64(st.RawEventBytes) / float64(st.StoredEventBytes)
		}
		fmt.Printf(" chunks=%d compressed=%d compression-ratio=%.2fx indexed-events=%d",
			st.Chunks, st.CompressedChunks, ratio, st.IndexedEvents)
		tids := make([]int, 0, len(st.ThreadChunks))
		for tid := range st.ThreadChunks {
			tids = append(tids, tid)
		}
		sort.Ints(tids)
		fmt.Printf(" thread-chunks=")
		for i, tid := range tids {
			if i > 0 {
				fmt.Printf(",")
			}
			fmt.Printf("%d:%d", tid, st.ThreadChunks[tid])
		}
	}
	if fi := st.Flight; fi != nil {
		fmt.Printf(" flight-recorder=ring:%dx%d retained-events=%d dropped-events=%d dropped-chunks=%d",
			fi.RingChunks, fi.ChunkEvents, fi.RetainedEvents, fi.DroppedEvents, fi.DroppedChunks)
		if !st.Indexed {
			warn(fmt.Sprintf("%s: flight-recorder dump has no footer index (partial dump?); events readable up to the truncation point", path))
		}
	}
	fmt.Println()
}

func ratio(in, out string) {
	fi, err := os.Stat(in)
	if err != nil {
		fail(err)
	}
	fo, err := os.Stat(out)
	if err != nil {
		fail(err)
	}
	if fo.Size() > 0 {
		fmt.Printf("size ratio in/out: %.2fx\n", float64(fi.Size())/float64(fo.Size()))
	}
}

func warn(msg string) {
	if msg != "" {
		fmt.Fprintf(os.Stderr, "warning: %s\n", msg)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "%v\n", err)
	os.Exit(1)
}
