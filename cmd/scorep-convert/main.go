// Command scorep-convert converts event traces between the JSONL
// stand-in format and the binary otf2-style archive format, in either
// direction, picking each side's codec by file extension (".otf2" is
// binary, anything else JSONL). The input may also be an experiment
// archive directory (-exp), whose trace.otf2 is used. With -stats it
// reports size, event count and bytes/event for both sides — the
// measurement behind the format's compression claim.
//
// Usage:
//
//	scorep-convert -in trace.jsonl -out trace.otf2 [-stats]
//	scorep-convert -in trace.otf2 -out trace.jsonl [-parallel 4]
//	scorep-convert -exp scorep-run -out trace.jsonl
//	scorep-convert -in trace.otf2 -stats          (inspect only)
package main

import (
	"flag"
	"fmt"
	"os"

	scorep "repro"
	"repro/internal/otf2"
	"repro/internal/region"
	"repro/internal/trace"
)

func main() {
	var (
		in       = flag.String("in", "", "input trace (.otf2 = binary archive, otherwise JSONL)")
		expDir   = flag.String("exp", "", "input experiment directory (its trace.otf2 is converted)")
		out      = flag.String("out", "", "output trace; format chosen by extension (optional with -stats)")
		stats    = flag.Bool("stats", false, "print size/event-count/bytes-per-event statistics")
		parallel = flag.Int("parallel", 0, "archive decode workers (0 = one per processor, 1 = sequential; the loaded trace is identical)")
	)
	flag.Parse()

	if *in != "" && *expDir != "" {
		fmt.Fprintln(os.Stderr, "-in conflicts with -exp: pick one input")
		os.Exit(2)
	}
	if *in == "" && *expDir != "" {
		exp, err := scorep.OpenExperiment(*expDir)
		if err != nil {
			fail(err)
		}
		if !exp.Meta.HasTrace {
			fail(fmt.Errorf("%s: experiment holds no trace", *expDir))
		}
		*in = exp.TracePath()
	}
	if *in == "" || (*out == "" && !*stats) {
		fmt.Fprintln(os.Stderr, "need -in <trace> (or -exp <dir>) and -out <trace> (or -stats)")
		os.Exit(2)
	}

	if *out == "" && otf2.IsArchivePath(*in) {
		// Inspect-only on an archive: count events streaming, in
		// O(chunk) memory, so archives larger than RAM can be sized up.
		events, warning, err := otf2.CountFileEvents(*in)
		if err != nil {
			fail(err)
		}
		warn(warning)
		printStats("in", *in, events)
		return
	}

	tr, warning, err := otf2.ReadFileLenient(*in, region.NewRegistry(), *parallel)
	if err != nil {
		fail(err)
	}
	warn(warning)
	events := tr.NumEvents()
	if *stats {
		printStats("in", *in, events)
	}

	if *out != "" {
		if !otf2.IsArchivePath(*out) {
			// JSONL cannot represent a region with an empty name (an
			// empty "r" field reads back as no region); the binary
			// format can. Flag the lossy case instead of hiding it.
			if n := emptyNameRegionEvents(tr); n > 0 {
				fmt.Fprintf(os.Stderr, "warning: %d events reference empty-named regions, which JSONL cannot represent; they will read back region-less\n", n)
			}
		}
		if err := otf2.WriteFile(*out, tr); err != nil {
			fail(err)
		}
		if *stats {
			printStats("out", *out, events)
			ratio(*in, *out)
		} else {
			fmt.Printf("wrote %s (%d events, %d threads)\n", *out, events, len(tr.Threads))
		}
	}
}

// emptyNameRegionEvents counts events whose region JSONL cannot round-trip.
func emptyNameRegionEvents(tr *trace.Trace) int {
	n := 0
	for _, evs := range tr.Threads {
		for _, ev := range evs {
			if ev.Region != nil && ev.Region.Name == "" {
				n++
			}
		}
	}
	return n
}

func printStats(label, path string, events int) {
	fi, err := os.Stat(path)
	if err != nil {
		fail(err)
	}
	format := "jsonl"
	if otf2.IsArchivePath(path) {
		format = "otf2"
	}
	perEvent := 0.0
	if events > 0 {
		perEvent = float64(fi.Size()) / float64(events)
	}
	fmt.Printf("%-3s %s: format=%s size=%d bytes events=%d bytes/event=%.2f\n",
		label, path, format, fi.Size(), events, perEvent)
}

func ratio(in, out string) {
	fi, err := os.Stat(in)
	if err != nil {
		fail(err)
	}
	fo, err := os.Stat(out)
	if err != nil {
		fail(err)
	}
	if fo.Size() > 0 {
		fmt.Printf("size ratio in/out: %.2fx\n", float64(fi.Size())/float64(fo.Size()))
	}
}

func warn(msg string) {
	if msg != "" {
		fmt.Fprintf(os.Stderr, "warning: %s\n", msg)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "%v\n", err)
	os.Exit(1)
}
