// Command scorep-exp regenerates the paper's evaluation: Figs. 13-15 and
// Tables I-IV plus the Section VI case study.
//
// Usage:
//
//	scorep-exp -all -size medium          # the full evaluation
//	scorep-exp -fig 13 -threads 1,2,4,8
//	scorep-exp -table 3 -size small
//	scorep-exp -casestudy
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bots"
	"repro/internal/exp"
)

func main() {
	var (
		all       = flag.Bool("all", false, "run the complete evaluation")
		fig       = flag.Int("fig", 0, "figure to reproduce: 13, 14 or 15")
		table     = flag.Int("table", 0, "table to reproduce: 1..4")
		casestudy = flag.Bool("casestudy", false, "run the Section VI nqueens case study")
		ablation  = flag.Bool("ablation", false, "run the scheduler ablation (central queue vs work stealing)")
		memory    = flag.Bool("memory", false, "run the Section V-B memory-requirements evaluation")
		sizeName  = flag.String("size", "small", "input size: tiny|small|medium")
		threadstr = flag.String("threads", "1,2,4,8", "comma-separated thread counts")
		reps      = flag.Int("reps", 3, "timed repetitions per configuration (median)")
		warmup    = flag.Int("warmup", 1, "warm-up runs per configuration")
		statTh    = flag.Int("stat-threads", 4, "thread count for Tables I/II/IV")
	)
	flag.Parse()

	cfg := exp.Config{Reps: *reps, Warmup: *warmup}
	size, err := bots.ParseSize(*sizeName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(2)
	}
	cfg.Size = size
	cfg.Threads, err = bots.ParseThreads(*threadstr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(2)
	}

	ran := false
	if *all || *fig == 13 {
		exp.FormatOverhead(os.Stdout,
			"Fig. 13: task profiling overhead %, optimized (cut-off) versions", exp.Fig13Overhead(cfg))
		ran = true
	}
	if *all || *fig == 14 {
		exp.FormatOverhead(os.Stdout,
			"Fig. 14: task profiling overhead %, non-cut-off versions", exp.Fig14Overhead(cfg))
		ran = true
	}
	if *all || *fig == 15 {
		exp.FormatScaling(os.Stdout, exp.Fig15RuntimeScaling(cfg))
		ran = true
	}
	if *all || *table == 1 {
		exp.FormatTable1(os.Stdout, exp.Table1TaskGranularity(cfg, *statTh))
		ran = true
	}
	if *all || *table == 2 {
		exp.FormatTable2(os.Stdout, exp.Table2ConcurrentTasks(cfg, *statTh))
		ran = true
	}
	if *all || *table == 3 {
		exp.FormatTable3(os.Stdout, exp.Table3NQueensRegions(cfg))
		ran = true
	}
	if *all || *table == 4 {
		exp.FormatTable4(os.Stdout, exp.Table4NQueensDepth(cfg, *statTh))
		ran = true
	}
	if *all || *casestudy {
		exp.FormatCaseStudy(os.Stdout, exp.CaseStudyNQueens(cfg, *statTh))
		ran = true
	}
	if *ablation {
		exp.FormatSchedulerAblation(os.Stdout, exp.SchedulerAblation(cfg))
		ran = true
	}
	if *all || *memory {
		exp.FormatMemory(os.Stdout, exp.MemoryRequirements(cfg, *statTh))
		ran = true
	}
	if !ran {
		fmt.Fprintln(os.Stderr, "nothing selected; use -all, -fig N, -table N or -casestudy")
		os.Exit(2)
	}
}
